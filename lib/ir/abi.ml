module Mem = struct
  exception Trap of string

  (* One flat arena with bump allocation.  Block ids are dense (1, 2, ...),
     so the block table is a pair of int arrays (span start, span length)
     indexed by id: decoding a pointer — the innermost operation of every
     load, store and string shim — is two bound checks and two array
     reads, and allocating a block is a bump plus two array writes with no
     per-block OCaml allocation (and so no GC traffic proportional to
     guest allocation rate).

     The arena is created uninitialized; [alloc] zeroes each fresh span
     (the documented "fresh zero bytes" contract), and the raw allocator
     below skips even that for spans the caller fully overwrites.  Bytes
     past [brk] are never part of any block, so their contents are
     unobservable. *)
  type t = {
    mutable arena : Bytes.t;
    mutable starts : int array;
    mutable lens : int array;
    mutable next : int;  (* next block id *)
    mutable brk : int;  (* first free arena offset *)
    mutable total : int;
  }

  let create () =
    {
      arena = Bytes.create 65536;
      starts = Array.make 64 0;
      lens = Array.make 64 0;
      next = 1;
      total = 0;
      brk = 0;
    }

  (* Reserves a span without zeroing it: the caller promises to overwrite
     all [n] bytes (or zero what it doesn't).  Returns the block's pointer
     and its start offset in [m.arena].  NOTE: the arena may be replaced
     by a later allocation's growth, so the start offset (and any use of
     [m.arena]) is only valid until the next alloc. *)
  let alloc_raw m n =
    if n < 0 then raise (Trap "negative allocation");
    let id = m.next in
    m.next <- id + 1;
    if id >= Array.length m.starts then begin
      let cap = 2 * Array.length m.starts in
      let s = Array.make cap 0 and l = Array.make cap 0 in
      Array.blit m.starts 0 s 0 id;
      Array.blit m.lens 0 l 0 id;
      m.starts <- s;
      m.lens <- l
    end;
    if m.brk + n > Bytes.length m.arena then begin
      let cap = ref (2 * Bytes.length m.arena) in
      while !cap < m.brk + n do
        cap := 2 * !cap
      done;
      let a = Bytes.create !cap in
      Bytes.blit m.arena 0 a 0 m.brk;
      m.arena <- a
    end;
    let start = m.brk in
    Array.unsafe_set m.starts id start;
    Array.unsafe_set m.lens id n;
    m.brk <- start + n;
    m.total <- m.total + n;
    (Int64.shift_left (Int64.of_int id) 32, start)

  let alloc m n =
    let ptr, start = alloc_raw m n in
    Bytes.fill m.arena start n '\000';
    ptr

  (* Returns the block's (start, length) span and the offset within it. *)
  let decode m ptr =
    if ptr = 0L then raise (Trap "null pointer dereference");
    let id = Int64.to_int (Int64.shift_right_logical ptr 32) in
    let off = Int64.to_int (Int64.logand ptr 0xFFFFFFFFL) in
    if id > 0 && id < m.next then
      (Array.unsafe_get m.starts id, Array.unsafe_get m.lens id, off)
    else raise (Trap (Printf.sprintf "wild pointer (block %d)" id))

  let load_byte m ptr =
    let s, len, off = decode m ptr in
    if off < 0 || off >= len then raise (Trap "load out of bounds");
    Char.code (Bytes.unsafe_get m.arena (s + off))

  let store_byte m ptr v =
    let s, len, off = decode m ptr in
    if off < 0 || off >= len then raise (Trap "store out of bounds");
    Bytes.unsafe_set m.arena (s + off) (Char.chr (v land 0xff))

  let load_i64 m ptr =
    let s, len, off = decode m ptr in
    if off < 0 || off + 8 > len then raise (Trap "load i64 out of bounds");
    Bytes.get_int64_le m.arena (s + off)

  let store_i64 m ptr v =
    let s, len, off = decode m ptr in
    if off < 0 || off + 8 > len then raise (Trap "store i64 out of bounds");
    Bytes.set_int64_le m.arena (s + off) v

  let offset ptr n = Int64.add ptr (Int64.of_int n)

  (* One decode + one NUL scan, instead of a block-table lookup per byte.
     The scan may overshoot the block into neighbouring arena bytes, but a
     NUL found at or past the block end only ever yields the same
     "unterminated string" trap the bounded scan would. *)
  let read_cstr m ptr =
    let s, len, off = decode m ptr in
    if off < 0 || off > len then raise (Trap "unterminated string");
    match Bytes.index_from_opt m.arena (s + off) '\000' with
    | Some stop when stop < s + len -> Bytes.sub_string m.arena (s + off) (stop - s - off)
    | Some _ | None -> raise (Trap "unterminated string")

  (* One raw alloc + one blit: every byte of the fresh block is written
     (payload plus explicit trailing NUL), and a fresh block of
     [len s + 1] bytes cannot be out of bounds, so the per-byte checks of
     the old store_byte loop were dead. *)
  let write_cstr m s =
    let n = String.length s in
    let ptr, start = alloc_raw m (n + 1) in
    Bytes.blit_string s 0 m.arena start n;
    Bytes.unsafe_set m.arena (start + n) '\000';
    ptr

  let blit_string m s ptr =
    let bs, len, off = decode m ptr in
    let n = String.length s in
    if off < 0 || off + n > len then raise (Trap "store out of bounds");
    Bytes.blit_string s 0 m.arena (bs + off) n

  let read_bytes m ptr n =
    let s, len, off = decode m ptr in
    if off < 0 || off + n > len then raise (Trap "read out of bounds");
    Bytes.sub_string m.arena (s + off) n

  let allocated_bytes m = m.total

  (* A frozen copy of a heap's live state (arena prefix + block table),
     trimmed to what is actually in use.  [restore] rehydrates it into a
     fresh, independent heap: the compiled engine snapshots a heap holding
     the materialized globals once per program and then starts each request
     from a few blits instead of replaying every initializer. *)
  type snapshot = {
    s_arena : Bytes.t;
    s_starts : int array;
    s_lens : int array;
    s_next : int;
    s_total : int;
  }

  let snapshot m =
    {
      s_arena = Bytes.sub m.arena 0 m.brk;
      s_starts = Array.sub m.starts 0 m.next;
      s_lens = Array.sub m.lens 0 m.next;
      s_next = m.next;
      s_total = m.total;
    }

  let restore s =
    let used = Bytes.length s.s_arena in
    let cap = ref 65536 in
    while !cap < used do
      cap := 2 * !cap
    done;
    let arena = Bytes.create !cap in
    Bytes.blit s.s_arena 0 arena 0 used;
    let tcap = ref 64 in
    while !tcap < s.s_next do
      tcap := 2 * !tcap
    done;
    let starts = Array.make !tcap 0 and lens = Array.make !tcap 0 in
    Array.blit s.s_starts 0 starts 0 s.s_next;
    Array.blit s.s_lens 0 lens 0 s.s_next;
    { arena; starts; lens; next = s.s_next; brk = used; total = s.s_total }
end

type str_abi = {
  abi_lang : string;
  read_str : Mem.t -> int64 -> string;
  alloc_str : Mem.t -> string -> int64;
}

let c_abi lang =
  { abi_lang = lang; read_str = Mem.read_cstr; alloc_str = (fun m s -> Mem.write_cstr m s) }

(* Reads the {data ptr; len} pair at [h + at]: one decode and one combined
   bound check instead of two full load_i64 round-trips.  Any failure the
   two separate loads would have hit raises the same "load i64 out of
   bounds" trap. *)
let read_header2 m h at =
  let s, len, off = Mem.decode m h in
  let off = off + at in
  if off < 0 || off + 16 > len then raise (Mem.Trap "load i64 out of bounds");
  let a = m.Mem.arena in
  (Bytes.get_int64_le a (s + off), Int64.to_int (Bytes.get_int64_le a (s + off + 8)))

(* Rust String: {data ptr; len; cap}; data has cap >= len bytes, no NUL. *)
let rust_abi =
  {
    abi_lang = "rust";
    read_str =
      (fun m h ->
        let data, len = read_header2 m h 0 in
        if len = 0 then "" else Mem.read_bytes m data len);
    alloc_str =
      (fun m s ->
        let len = String.length s in
        let cap = len + 8 in
        (* Raw spans are uninitialized: the payload is blitted and the eight
           bytes of readable slack are zeroed explicitly. *)
        let data, ds = Mem.alloc_raw m cap in
        Bytes.blit_string s 0 m.Mem.arena ds len;
        Bytes.fill m.Mem.arena (ds + len) 8 '\000';
        let h, hs = Mem.alloc_raw m 24 in
        (* Re-read the arena: the header allocation may have grown it. *)
        let a = m.Mem.arena in
        Bytes.set_int64_le a hs data;
        Bytes.set_int64_le a (hs + 8) (Int64.of_int len);
        Bytes.set_int64_le a (hs + 16) (Int64.of_int cap);
        h);
  }

(* Go string: {data ptr; len}. *)
let go_abi =
  {
    abi_lang = "go";
    read_str =
      (fun m h ->
        let data, len = read_header2 m h 0 in
        if len = 0 then "" else Mem.read_bytes m data len);
    alloc_str =
      (fun m s ->
        let len = String.length s in
        let data, ds = Mem.alloc_raw m (max 1 len) in
        if len = 0 then Bytes.unsafe_set m.Mem.arena ds '\000'
        else Bytes.blit_string s 0 m.Mem.arena ds len;
        let h, hs = Mem.alloc_raw m 16 in
        let a = m.Mem.arena in
        Bytes.set_int64_le a hs data;
        Bytes.set_int64_le a (hs + 8) (Int64.of_int len);
        h);
  }

(* Swift String (simplified heap representation): {refcount; data ptr; len}. *)
let swift_abi =
  {
    abi_lang = "swift";
    read_str =
      (fun m h ->
        let data, len = read_header2 m h 8 in
        if len = 0 then "" else Mem.read_bytes m data len);
    alloc_str =
      (fun m s ->
        let len = String.length s in
        let data, ds = Mem.alloc_raw m (max 1 len) in
        if len = 0 then Bytes.unsafe_set m.Mem.arena ds '\000'
        else Bytes.blit_string s 0 m.Mem.arena ds len;
        let h, hs = Mem.alloc_raw m 24 in
        let a = m.Mem.arena in
        Bytes.set_int64_le a hs 1L;
        Bytes.set_int64_le a (hs + 8) data;
        Bytes.set_int64_le a (hs + 16) (Int64.of_int len);
        h);
  }

let abi_of_lang = function
  | "c" -> c_abi "c"
  | "cpp" -> c_abi "cpp"
  | "rust" -> rust_abi
  | "go" -> go_abi
  | "swift" -> swift_abi
  | l -> invalid_arg (Printf.sprintf "Abi.abi_of_lang: unknown language %s" l)
