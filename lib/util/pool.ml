(* Work-stealing-free parallel map: an atomic index counter hands items to
   worker domains; results land in a pre-sized array, so ordering is by
   construction and no synchronization beyond the counter is needed (each
   slot has exactly one writer, and Domain.join publishes the writes). *)

let truthy = function Some ("1" | "true" | "yes") -> true | _ -> false

let sequential_forced () =
  truthy (Sys.getenv_opt "QUILT_SEQUENTIAL")
  || Sys.getenv_opt "QUILT_POOL_DOMAINS" = Some "1"

let default_domains () =
  if sequential_forced () then 1
  else
    match Sys.getenv_opt "QUILT_POOL_DOMAINS" with
    | Some s -> ( match int_of_string_opt s with Some d when d >= 1 -> d | _ -> Domain.recommended_domain_count ())
    | None -> Domain.recommended_domain_count ()

(* Spawn [d - 1] helper domains running [worker], run [worker] in the
   calling domain too, and join every helper that was actually spawned even
   if a later [Domain.spawn] itself raises (resource exhaustion): workers
   drain a shared counter, so the already-running helpers terminate on
   their own and joining them cannot deadlock. *)
let run_workers d worker =
  let spawned = ref [] in
  (match
     for _ = 1 to d - 1 do
       spawned := Domain.spawn worker :: !spawned
     done
   with
  | () -> worker ()
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      worker ();
      List.iter Domain.join !spawned;
      Printexc.raise_with_backtrace e bt);
  List.iter Domain.join !spawned

let effective_domains ?domains n =
  let requested = match domains with Some d -> d | None -> default_domains () in
  if sequential_forced () then 1 else min requested n

let mapi_array ?domains f items =
  let n = Array.length items in
  let d = effective_domains ?domains n in
  if d <= 1 || n <= 1 then Array.mapi f items
  else begin
    let results : ('b, exn * Printexc.raw_backtrace) result option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          results.(i) <-
            Some
              (match f i items.(i) with
              | v -> Ok v
              | exception e -> Error (e, Printexc.get_raw_backtrace ()))
      done
    in
    run_workers d worker;
    (* Re-raise the earliest failure deterministically, whichever domain hit
       it. *)
    Array.iter
      (function Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt | Some (Ok _) | None -> ())
      results;
    Array.map (function Some (Ok v) -> v | Some (Error _) | None -> assert false) results
  end

let map_array ?domains f items = mapi_array ?domains (fun _ x -> f x) items

let mapi ?domains f items = Array.to_list (mapi_array ?domains f (Array.of_list items))

let map ?domains f items = mapi ?domains (fun _ x -> f x) items

let map_reduce ?domains ~map:f ~reduce init items =
  let mapped = mapi_array ?domains (fun _ x -> f x) (Array.of_list items) in
  Array.fold_left reduce init mapped
