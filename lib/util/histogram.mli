(** HDR-style latency histogram.

    Records values (latencies in microseconds by convention) into
    logarithmically-spaced buckets with bounded relative error, like the
    HdrHistogram that wrk2 uses.  Quantile queries are exact to the bucket
    resolution (~1% relative error with the default configuration). *)

type t

val create : unit -> t
(** A histogram covering [\[1, 10^9\]] microseconds with 64 sub-buckets per
    power-of-two bucket. *)

val record : t -> float -> unit
(** [record h v] records one observation.  Values below 1 are clamped to 1;
    values above the range are clamped to the maximum trackable value. *)

val record_n : t -> float -> int -> unit
(** [record_n h v n] records [n] identical observations; used for
    coordinated-omission correction. *)

val count : t -> int

val quantile : t -> float -> float
(** [quantile h q] with [q] in [\[0,1\]]; returns 0 on an empty histogram.
    The answer is exact to the bucket resolution and always lies inside
    [\[min_value, max_value\]] — in particular [quantile h 0.0 = min_value]
    and [quantile h 1.0 = max_value] up to that clamp, even with a single
    observation. *)

val median : t -> float

val mean : t -> float

val max_value : t -> float

val min_value : t -> float

val merge_into : dst:t -> t -> unit
(** Accumulates the source histogram's buckets into [dst]. *)

val iter_buckets : t -> (lo:float -> hi:float -> count:int -> unit) -> unit
(** Iterates the non-empty buckets in increasing value order; each callback
    reports the bucket's half-open value range [\[lo, hi)] and its
    observation count.  Σ count = {!count}.  This is the exporter-facing
    view of the internal log-linear layout. *)

val num_nonempty_buckets : t -> int

val reset : t -> unit
