(** Binary min-heap with a monomorphic [float] priority.

    Used as a general float-keyed priority queue (branch-and-bound bounds,
    decision algorithms).  Priorities compare with the native float [<], so
    no polymorphic-compare call sits on the pop path; ties break by
    insertion order so drains are deterministic.  The simulator's event
    queue moved to the timer-wheel scheduler ([Quilt_platform.Sched]),
    which keeps this heap as its parity reference. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h prio v] inserts [v] with priority [prio]. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum element, [None] when empty. *)

val peek : 'a t -> (float * 'a) option
(** Returns the minimum element without removing it. *)

val clear : 'a t -> unit
