(* Word-packed bitsets.  OCaml ints are 63-bit on 64-bit platforms; we use
   all of Sys.int_size bits per word.  The top word is kept masked so that
   count/equal/is_empty can work word-wise without trimming. *)

let word_bits = Sys.int_size

type t = { n : int; words : int array }

let words_for n = (n + word_bits - 1) / word_bits

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative width";
  { n; words = Array.make (words_for n) 0 }

let length t = t.n

let check t i ~op = if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Bitset.%s: index %d out of [0,%d)" op i t.n)

let set t i =
  check t i ~op:"set";
  t.words.(i / word_bits) <- t.words.(i / word_bits) lor (1 lsl (i mod word_bits))

let unset t i =
  check t i ~op:"unset";
  t.words.(i / word_bits) <- t.words.(i / word_bits) land lnot (1 lsl (i mod word_bits))

let mem t i =
  check t i ~op:"mem";
  t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let copy t = { n = t.n; words = Array.copy t.words }

let add t i =
  let t' = copy t in
  set t' i;
  t'

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let is_empty t = Array.for_all (fun w -> w = 0) t.words

(* Kernighan's popcount: one iteration per set bit, which is cheap on the
   sparse words the decision algorithms mostly produce. *)
let popcount w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let same_width a b ~op =
  if a.n <> b.n then invalid_arg (Printf.sprintf "Bitset.%s: widths differ (%d vs %d)" op a.n b.n)

let equal a b =
  same_width a b ~op:"equal";
  let rec go i = i >= Array.length a.words || (a.words.(i) = b.words.(i) && go (i + 1)) in
  go 0

let subset a b =
  same_width a b ~op:"subset";
  let rec go i = i >= Array.length a.words || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1)) in
  go 0

let union_into ~dst src =
  same_width dst src ~op:"union_into";
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) lor src.words.(i)
  done

let inter_into ~dst src =
  same_width dst src ~op:"inter_into";
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land src.words.(i)
  done

let diff_into ~dst src =
  same_width dst src ~op:"diff_into";
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land lnot src.words.(i)
  done

let union a b =
  let r = copy a in
  union_into ~dst:r b;
  r

let inter a b =
  let r = copy a in
  inter_into ~dst:r b;
  r

let diff a b =
  let r = copy a in
  diff_into ~dst:r b;
  r

let disjoint a b =
  same_width a b ~op:"disjoint";
  let rec go i = i >= Array.length a.words || (a.words.(i) land b.words.(i) = 0 && go (i + 1)) in
  go 0

let iter f t =
  for wi = 0 to Array.length t.words - 1 do
    let w = ref t.words.(wi) in
    while !w <> 0 do
      (* Lowest set bit; log2 of a power of two via float exponent would be
         inexact at 63 bits, so count trailing zeros by shifting. *)
      let lsb = !w land -(!w) in
      let bit = ref 0 and x = ref lsb in
      while !x land 1 = 0 do
        x := !x lsr 1;
        incr bit
      done;
      f ((wi * word_bits) + !bit);
      w := !w land lnot lsb
    done
  done

let fold f init t =
  let acc = ref init in
  iter (fun i -> acc := f !acc i) t;
  !acc

let to_list t = List.rev (fold (fun acc i -> i :: acc) [] t)
let elements = to_list

let of_bool_array a =
  let t = create (Array.length a) in
  Array.iteri (fun i b -> if b then set t i) a;
  t

let to_bool_array t = Array.init t.n (mem t)

let of_list n l =
  let t = create n in
  List.iter (set t) l;
  t

let pp fmt t =
  Format.fprintf fmt "{%s}" (String.concat "," (List.map string_of_int (to_list t)))
