(* Log-linear buckets: for each power-of-two range we keep [sub] linear
   sub-buckets, giving bounded relative error like HdrHistogram. *)

let sub_bits = 6
let sub = 1 lsl sub_bits (* 64 sub-buckets per octave *)
let octaves = 30 (* covers up to ~10^9 *)

type t = {
  buckets : int array; (* octaves * sub *)
  mutable total : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create () =
  {
    buckets = Array.make (octaves * sub) 0;
    total = 0;
    sum = 0.0;
    vmin = infinity;
    vmax = neg_infinity;
  }

let index_of v =
  let v = if v < 1.0 then 1.0 else v in
  let iv = int_of_float v in
  let iv = if iv < 1 then 1 else iv in
  (* octave = position of the highest set bit beyond the sub-bucket range *)
  let rec msb n acc = if n <= 1 then acc else msb (n lsr 1) (acc + 1) in
  let m = msb iv 0 in
  if m < sub_bits then iv (* small values map linearly into the first octave *)
  else begin
    let octave = m - sub_bits + 1 in
    let shifted = iv lsr (octave - 1) in
    (* shifted is in [sub, 2*sub) *)
    let idx = (octave * sub) + (shifted - sub) in
    if idx >= octaves * sub then (octaves * sub) - 1 else idx
  end

(* Representative value of a bucket: midpoint of its range. *)
let value_of idx =
  if idx < sub then float_of_int idx
  else begin
    let octave = idx / sub in
    let pos = idx mod sub in
    let base = (sub + pos) lsl (octave - 1) in
    let width = 1 lsl (octave - 1) in
    float_of_int base +. (float_of_int width /. 2.0)
  end

(* Bounds of a bucket's value range: [lo, hi).  The first octave's buckets
   are unit-wide at integer boundaries; octave [o] has width 2^(o-1). *)
let bounds_of idx =
  if idx < sub then (float_of_int idx, float_of_int (idx + 1))
  else begin
    let octave = idx / sub in
    let pos = idx mod sub in
    let base = (sub + pos) lsl (octave - 1) in
    let width = 1 lsl (octave - 1) in
    (float_of_int base, float_of_int (base + width))
  end

let record_n h v n =
  if n > 0 then begin
    let idx = index_of v in
    h.buckets.(idx) <- h.buckets.(idx) + n;
    h.total <- h.total + n;
    h.sum <- h.sum +. (v *. float_of_int n);
    if v < h.vmin then h.vmin <- v;
    if v > h.vmax then h.vmax <- v
  end

let record h v = record_n h v 1

let count h = h.total

let quantile h q =
  if h.total = 0 then 0.0
  else begin
    let target =
      let t = int_of_float (ceil (q *. float_of_int h.total)) in
      if t < 1 then 1 else if t > h.total then h.total else t
    in
    let acc = ref 0 in
    let result = ref h.vmax in
    (try
       for i = 0 to Array.length h.buckets - 1 do
         acc := !acc + h.buckets.(i);
         if !acc >= target then begin
           result := value_of i;
           raise Exit
         end
       done
     with Exit -> ());
    (* A bucket's representative (its midpoint) can overshoot the observed
       extremes — e.g. a single observation of 100.0 lands in [100, 101),
       whose midpoint is 100.5 — so p0/p100 are pinned to the exact
       recorded min/max instead of the bucket resolution. *)
    if !result < h.vmin then h.vmin else if !result > h.vmax then h.vmax else !result
  end

let median h = quantile h 0.5

let mean h = if h.total = 0 then 0.0 else h.sum /. float_of_int h.total

let max_value h = if h.total = 0 then 0.0 else h.vmax

let min_value h = if h.total = 0 then 0.0 else h.vmin

let merge_into ~dst src =
  Array.iteri (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n) src.buckets;
  dst.total <- dst.total + src.total;
  dst.sum <- dst.sum +. src.sum;
  if src.vmin < dst.vmin then dst.vmin <- src.vmin;
  if src.vmax > dst.vmax then dst.vmax <- src.vmax

let iter_buckets h f =
  Array.iteri
    (fun i n ->
      if n > 0 then begin
        let lo, hi = bounds_of i in
        f ~lo ~hi ~count:n
      end)
    h.buckets

let num_nonempty_buckets h =
  let n = ref 0 in
  Array.iter (fun c -> if c > 0 then incr n) h.buckets;
  !n

let reset h =
  Array.fill h.buckets 0 (Array.length h.buckets) 0;
  h.total <- 0;
  h.sum <- 0.0;
  h.vmin <- infinity;
  h.vmax <- neg_infinity
