(** Small Domain-based parallel map (OCaml 5 multicore).

    The benchmark harness has several embarrassingly parallel loops (one
    simulator run per offered-load point, one random rDAG per repetition).
    [map] fans such a loop out across domains while keeping the result list
    in input order, so callers that fix per-item RNG seeds get output that is
    bit-identical to a sequential run.

    Parallelism is disabled (everything runs in the calling domain, still in
    order) when any of the following holds:
    - [QUILT_SEQUENTIAL=1] is set in the environment (the escape hatch for
      debugging or for machines where timing noise matters);
    - [~domains:1] is passed;
    - the input has fewer than two elements.

    Work items must not share mutable state with each other: each item is
    evaluated exactly once, in exactly one domain. *)

val sequential_forced : unit -> bool
(** True when [QUILT_SEQUENTIAL=1] (or [QUILT_POOL_DOMAINS=1]) is set. *)

val default_domains : unit -> int
(** [QUILT_POOL_DOMAINS] if set and >= 1, otherwise
    [Domain.recommended_domain_count ()]; 1 when sequential mode is
    forced. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f items] is [List.map f items], computed on up to [domains]
    domains (default {!default_domains}).  Results are returned in input
    order.  If any application of [f] raises, the exception of the
    earliest-indexed failing item is re-raised in the caller after all
    domains have been joined. *)

val mapi : ?domains:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!map}, passing each item's index. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array variant of {!map}. *)

val mapi_array : ?domains:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Array variant of {!mapi}. *)

val map_reduce :
  ?domains:int -> map:('a -> 'b) -> reduce:('acc -> 'b -> 'acc) -> 'acc -> 'a list -> 'acc
(** [map_reduce ~map ~reduce init items] applies [map] to every item (in
    parallel, up to [domains] domains) and then folds the results with
    [reduce] sequentially {e in input order} in the calling domain, starting
    from [init].  Because the fold is an ordered left fold, [reduce] need
    not be commutative or associative: the result is identical to
    [List.fold_left reduce init (List.map map items)].

    Exception safety: if any application of [map] raises, every domain that
    was spawned is still joined (no orphaned domains) and the exception of
    the earliest-indexed failing item is re-raised in the caller; [reduce]
    is not applied in that case. *)
