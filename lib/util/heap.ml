type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length h = h.size

let is_empty h = h.size = 0

(* Monomorphic float compare: the generic [<] here used to go through
   polymorphic compare on every sift step, which dominated deep queues. *)
let lt a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow h e =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nd = Array.make ncap e in
    Array.blit h.data 0 nd 0 h.size;
    h.data <- nd
  end

let push h prio value =
  let e = { prio; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  grow h e;
  let i = ref h.size in
  h.size <- h.size + 1;
  h.data.(!i) <- e;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if lt h.data.(!i) h.data.(parent) then begin
      let tmp = h.data.(parent) in
      h.data.(parent) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := parent
    end else continue := false
  done

let sift_down h =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < h.size && lt h.data.(l) h.data.(!smallest) then smallest := l;
    if r < h.size && lt h.data.(r) h.data.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = h.data.(!smallest) in
      h.data.(!smallest) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := !smallest
    end else continue := false
  done

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h
    end;
    Some (top.prio, top.value)
  end

let peek h = if h.size = 0 then None else Some (h.data.(0).prio, h.data.(0).value)

let clear h =
  h.data <- [||];
  h.size <- 0
