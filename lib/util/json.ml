type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- Printer --- *)

let needs_escape c = c = '"' || c = '\\' || Char.code c < 0x20

let escape_string buf s =
  Buffer.add_char buf '"';
  (* Copy maximal clean runs in one blit; most strings have no escapes. *)
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    while !i < n && not (needs_escape (String.unsafe_get s !i)) do
      incr i
    done;
    if !i > start then Buffer.add_substring buf s start (!i - start);
    if !i < n then begin
      (match String.unsafe_get s !i with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c)));
      incr i
    end
  done;
  Buffer.add_char buf '"'

let rec write buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | String s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          write buf item)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 64 in
  write buf v;
  Buffer.contents buf

let pp fmt v = Format.pp_print_string fmt (to_string v)

(* --- Parser --- *)

type parser_state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let s = st.src in
  let n = String.length s in
  let i = ref st.pos in
  while
    !i < n && (match String.unsafe_get s !i with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    incr i
  done;
  st.pos <- !i

let expect st c =
  if st.pos < String.length st.src then begin
    let c' = String.unsafe_get st.src st.pos in
    if c' = c then st.pos <- st.pos + 1 else fail st (Printf.sprintf "expected %c, found %c" c c')
  end
  else fail st (Printf.sprintf "expected %c, found end of input" c)

let parse_hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c ->
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> fail st "invalid \\u escape"
        in
        v := (!v * 16) + d
    | None -> fail st "unterminated \\u escape");
    advance st
  done;
  !v

let utf8_of_code buf code =
  (* Encode a Unicode scalar value as UTF-8. *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

(* Scan from [i] to the next quote, backslash, or end of input. *)
let scan_plain s n i =
  let j = ref i in
  while
    !j < n
    &&
    let c = String.unsafe_get s !j in
    c <> '"' && c <> '\\'
  do
    incr j
  done;
  !j

let parse_string_body st =
  expect st '"';
  let s = st.src in
  let n = String.length s in
  let stop = scan_plain s n st.pos in
  if stop >= n then begin
    st.pos <- n;
    fail st "unterminated string"
  end
  else if String.unsafe_get s stop = '"' then begin
    (* Fast path: no escapes, the body is a direct substring. *)
    let body = String.sub s st.pos (stop - st.pos) in
    st.pos <- stop + 1;
    body
  end
  else begin
    let buf = Buffer.create 16 in
    Buffer.add_substring buf s st.pos (stop - st.pos);
    st.pos <- stop;
    let rec loop () =
      match peek st with
      | None -> fail st "unterminated string"
      | Some '"' ->
          advance st;
          Buffer.contents buf
      | Some '\\' ->
          advance st;
          (match peek st with
          | Some '"' -> Buffer.add_char buf '"'; advance st
          | Some '\\' -> Buffer.add_char buf '\\'; advance st
          | Some '/' -> Buffer.add_char buf '/'; advance st
          | Some 'n' -> Buffer.add_char buf '\n'; advance st
          | Some 't' -> Buffer.add_char buf '\t'; advance st
          | Some 'r' -> Buffer.add_char buf '\r'; advance st
          | Some 'b' -> Buffer.add_char buf '\b'; advance st
          | Some 'f' -> Buffer.add_char buf '\012'; advance st
          | Some 'u' ->
              advance st;
              utf8_of_code buf (parse_hex4 st)
          | Some c -> fail st (Printf.sprintf "invalid escape \\%c" c)
          | None -> fail st "unterminated escape");
          loop ()
      | Some _ ->
          let stop = scan_plain s n st.pos in
          Buffer.add_substring buf s st.pos (stop - st.pos);
          st.pos <- stop;
          loop ()
    in
    loop ()
  end

let parse_literal st lit value =
  let n = String.length lit in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = lit then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" lit)

let parse_number st =
  let s = st.src in
  let n = String.length s in
  let start = st.pos in
  let is_float = ref false in
  let i = ref st.pos in
  let continue = ref true in
  while !continue && !i < n do
    match String.unsafe_get s !i with
    | '0' .. '9' | '-' | '+' -> incr i
    | '.' | 'e' | 'E' ->
        is_float := true;
        incr i
    | _ -> continue := false
  done;
  st.pos <- !i;
  let text = String.sub s start (!i - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st "invalid number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail st "invalid number")

let rec parse_value st =
  skip_ws st;
  match if st.pos < String.length st.src then st.src.[st.pos] else '\000' with
  | '\000' when st.pos >= String.length st.src -> fail st "unexpected end of input"
  | '"' -> String (parse_string_body st)
  | '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws st;
          let k = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (k, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ()
          | Some '}' -> advance st
          | Some c -> fail st (Printf.sprintf "expected , or } in object, found %c" c)
          | None -> fail st "unterminated object"
        in
        members ();
        Obj (List.rev !fields)
      end
  | '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements ()
          | Some ']' -> advance st
          | Some c -> fail st (Printf.sprintf "expected , or ] in array, found %c" c)
          | None -> fail st "unterminated array"
        in
        elements ();
        List (List.rev !items)
      end
  | 't' -> parse_literal st "true" (Bool true)
  | 'f' -> parse_literal st "false" (Bool false)
  | 'n' -> parse_literal st "null" Null
  | '-' | '0' .. '9' -> parse_number st
  | c -> fail st (Printf.sprintf "unexpected character %c" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* --- Equality --- *)

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | String x, String y -> x = y
  | List xs, List ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
      let sorted l = List.sort (fun (k1, _) (k2, _) -> compare k1 k2) l in
      let xs = sorted xs and ys = sorted ys in
      List.length xs = List.length ys
      && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && equal v1 v2) xs ys
  | (Null | Bool _ | Int _ | Float _ | String _ | List _ | Obj _), _ -> false

(* --- Accessors --- *)

let member k v =
  match v with
  | Obj fields -> ( match List.assoc_opt k fields with Some f -> f | None -> Null)
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> Null

let to_int_opt v =
  match v with
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | Null | Bool _ | Float _ | String _ | List _ | Obj _ -> None

let to_string_opt v =
  match v with
  | String s -> Some s
  | Null | Bool _ | Int _ | Float _ | List _ | Obj _ -> None

let to_list v =
  match v with
  | List items -> items
  | Null | Bool _ | Int _ | Float _ | String _ | Obj _ -> []

let obj fields = Obj fields
let str s = String s
let int i = Int i
