(** Fixed-width bitsets over [int] words.

    The decision algorithms manipulate many vertex sets over a graph whose
    size is known up front (closures, descendant sets, subgraph members).
    Representing them as word-packed bitsets makes union/intersection
    word-level operations — 63 elements per instruction instead of one — and
    keeps the sets cache-resident.  All sets of a given width share the same
    layout, so the binary operations require equal widths and raise
    [Invalid_argument] otherwise.

    Mutating operations ([set], [unset], [union_into], ...) are in-place;
    [union] and [inter] are their pure counterparts.  Indices outside
    [0, length) raise [Invalid_argument]. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [{0, ..., n-1}].  [n] must be
    non-negative. *)

val length : t -> int
(** Width of the universe, as given to {!create}. *)

val set : t -> int -> unit
val unset : t -> int -> unit
val mem : t -> int -> bool

val add : t -> int -> t
(** Pure [set]: a fresh set with the extra element. *)

val copy : t -> t
val clear : t -> unit
(** Removes every element, in place. *)

val is_empty : t -> bool
val count : t -> int
(** Number of elements (population count). *)

val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] is true iff every element of [a] is in [b]. *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] adds every element of [src] to [dst], word by
    word. *)

val inter_into : dst:t -> t -> unit
val diff_into : dst:t -> t -> unit
(** [diff_into ~dst src] removes every element of [src] from [dst]. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val disjoint : t -> t -> bool

val iter : (int -> unit) -> t -> unit
(** Calls the function on each element in increasing order, skipping empty
    words. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
(** [fold f init s] folds over elements in increasing order. *)

val to_list : t -> int list
val elements : t -> int list
(** Alias for {!to_list}. *)

val of_bool_array : bool array -> t
val to_bool_array : t -> bool array

val of_list : int -> int list -> t
(** [of_list n l] is the set over universe [n] containing [l]. *)

val pp : Format.formatter -> t -> unit
