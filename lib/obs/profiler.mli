(** Live profiler: folds completed spans back into the §3 profile shapes.

    The ground-truth path ({!Quilt_core.Quilt.profile}) runs a dedicated
    profiling simulation with the profiler token on.  The live profiler
    instead reconstructs the same artifacts — a {!Quilt_tracing.Trace}
    store and from it a {!Quilt_dag.Callgraph} — from the span stream an
    attached {!Recorder} observed on production traffic:

    - every span becomes a call-edge observation (caller → fn, sync/async);
    - per-(container, function) cumulative CPU/invocation/peak-memory
      series are resynthesized from the spans' modeled demand, exactly the
      shape the §8 monitor cells emit, so
      {!Quilt_tracing.Builder.build} aggregates them identically;
    - N is the number of client-ingress spans of the entry.

    Under uniform 1/N head sampling, edge weights and N scale together, so
    α, call rates and the per-invocation resources — everything the
    decision consumes — are unbiased; multiply counts by
    {!Recorder.sample_period} when absolute rates are needed. *)

val to_trace : ?since:float -> Recorder.t -> Quilt_tracing.Trace.store
(** The synthesized span + resource store over the retained spans
    (completion time [>= since]). *)

val callgraph :
  ?since:float ->
  ?code_edges:(string * string * Quilt_dag.Callgraph.call_kind) list ->
  entry:string ->
  Recorder.t ->
  (Quilt_dag.Callgraph.t, string) result
(** [Builder.build] over {!to_trace}, plus the statically-known
    [code_edges] at weight 0 (Figure 3's dashed arrows).  [Error] when the
    window holds no sampled invocation of [entry]. *)

val invocations : ?since:float -> entry:string -> Recorder.t -> int
(** Sampled client invocations of [entry] in the window (the controller's
    min-invocations gate; multiply by the sample period for an unbiased
    traffic estimate). *)

type fn_profile = {
  fp_fn : string;
  fp_calls : int;  (** Sampled invocations of this function. *)
  fp_cpu_ms : float;  (** Mean modeled CPU per invocation. *)
  fp_mem_mb : float;  (** Peak modeled per-invocation footprint. *)
  fp_queue_ms : float;  (** Mean scheduling delay (remote spans). *)
  fp_fail : int;
}

val profiles : ?since:float -> Recorder.t -> fn_profile list
(** Per-function fold of the retained spans, sorted by name. *)

val edge_counts : ?since:float -> Recorder.t -> ((string option * string) * int) list
(** Observed caller→callee frequencies, sorted; the client ingress appears
    as [None]. *)
