module Engine = Quilt_platform.Engine

type span = {
  sp_rid : int;
  sp_fn : string;
  sp_caller : string option;
  sp_cid : int;
  sp_node : int;
  sp_send : float;
  sp_enq : float;
  sp_start : float;
  sp_end : float;
  sp_cpu_us : float;
  sp_mem_mb : float;
  sp_async : bool;
  sp_local : bool;
  sp_ok : bool;
}

let queue_us s = Float.max 0.0 (s.sp_start -. s.sp_enq)
let hop_us s = Float.max 0.0 (s.sp_enq -. s.sp_send)

(* Structure of arrays: float columns stay unboxed (flat float arrays),
   names are interned ids, the three booleans share one flags byte. *)
type t = {
  cap : int;  (* power of two *)
  mask : int;
  period : int;
  seed : int;
  c_rid : int array;
  c_fn : int array;
  c_caller : int array;  (* interned name, -1 = client *)
  c_cid : int array;
  c_node : int array;
  c_send : float array;
  c_enq : float array;
  c_start : float array;
  c_end : float array;
  c_cpu : float array;
  c_mem : float array;
  c_flags : Bytes.t;
  name_ids : (string, int) Hashtbl.t;
  mutable names : string array;  (* id -> name, first n_names entries live *)
  mutable n_names : int;
  mutable written : int;
  mutable seen : int;
  mutable sampled : int;
}

let fl_async = 1
let fl_local = 2
let fl_ok = 4

let rec pow2_ge n acc = if acc >= n then acc else pow2_ge n (acc * 2)

let create ?(capacity = 1 lsl 18) ?(sample_period = 1) ?(seed = 0) () =
  if capacity < 1 then invalid_arg "Recorder.create: capacity must be positive";
  if sample_period < 1 then invalid_arg "Recorder.create: sample_period must be positive";
  let cap = pow2_ge capacity 1 in
  {
    cap;
    mask = cap - 1;
    period = sample_period;
    seed;
    c_rid = Array.make cap 0;
    c_fn = Array.make cap 0;
    c_caller = Array.make cap (-1);
    c_cid = Array.make cap 0;
    c_node = Array.make cap 0;
    c_send = Array.make cap 0.0;
    c_enq = Array.make cap 0.0;
    c_start = Array.make cap 0.0;
    c_end = Array.make cap 0.0;
    c_cpu = Array.make cap 0.0;
    c_mem = Array.make cap 0.0;
    c_flags = Bytes.make cap '\000';
    name_ids = Hashtbl.create 64;
    names = Array.make 64 "";
    n_names = 0;
    written = 0;
    seen = 0;
    sampled = 0;
  }

let sample_period t = t.period

let intern t s =
  match Hashtbl.find_opt t.name_ids s with
  | Some id -> id
  | None ->
      let id = t.n_names in
      if id = Array.length t.names then begin
        let bigger = Array.make (2 * id) "" in
        Array.blit t.names 0 bigger 0 id;
        t.names <- bigger
      end;
      t.names.(id) <- s;
      t.n_names <- id + 1;
      Hashtbl.add t.name_ids s id;
      id

(* splitmix64 finalizer: a pure, well-mixed hash of (seed, rid) so the
   sampling verdict is a function of the ids alone — equal seeds over
   equal traffic sample identical request sets. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let sample t rid =
  t.seen <- t.seen + 1;
  let hit =
    t.period = 1
    ||
    let h =
      mix64 (Int64.add (Int64.of_int rid) (Int64.mul (Int64.of_int (t.seed + 1)) 0x9E3779B97F4A7C15L))
    in
    Int64.to_int h land max_int mod t.period = 0
  in
  if hit then t.sampled <- t.sampled + 1;
  hit

let emit t ~rid ~fn ~caller ~cid ~node ~t_send ~t_enq ~t_start ~t_end ~cpu_us ~mem_mb ~async
    ~local ~ok =
  let i = t.written land t.mask in
  t.c_rid.(i) <- rid;
  t.c_fn.(i) <- intern t fn;
  (t.c_caller.(i) <- (match caller with Some c -> intern t c | None -> -1));
  t.c_cid.(i) <- cid;
  t.c_node.(i) <- node;
  t.c_send.(i) <- t_send;
  t.c_enq.(i) <- t_enq;
  t.c_start.(i) <- t_start;
  t.c_end.(i) <- t_end;
  t.c_cpu.(i) <- cpu_us;
  t.c_mem.(i) <- mem_mb;
  Bytes.unsafe_set t.c_flags i
    (Char.unsafe_chr
       ((if async then fl_async else 0) lor (if local then fl_local else 0)
       lor if ok then fl_ok else 0));
  t.written <- t.written + 1

let sink t =
  { Engine.sk_sample = (fun rid -> sample t rid); sk_task = emit t }

let attach t engine = Engine.set_span_sink engine (Some (sink t))
let detach engine = Engine.set_span_sink engine None

let length t = min t.written t.cap
let recorded t = t.written
let dropped t = max 0 (t.written - t.cap)
let seen_roots t = t.seen
let sampled_roots t = t.sampled

let get t i =
  let n = length t in
  if i < 0 || i >= n then invalid_arg "Recorder.get: index out of range";
  let j = (t.written - n + i) land t.mask in
  let flags = Char.code (Bytes.get t.c_flags j) in
  {
    sp_rid = t.c_rid.(j);
    sp_fn = t.names.(t.c_fn.(j));
    sp_caller = (let c = t.c_caller.(j) in if c < 0 then None else Some t.names.(c));
    sp_cid = t.c_cid.(j);
    sp_node = t.c_node.(j);
    sp_send = t.c_send.(j);
    sp_enq = t.c_enq.(j);
    sp_start = t.c_start.(j);
    sp_end = t.c_end.(j);
    sp_cpu_us = t.c_cpu.(j);
    sp_mem_mb = t.c_mem.(j);
    sp_async = flags land fl_async <> 0;
    sp_local = flags land fl_local <> 0;
    sp_ok = flags land fl_ok <> 0;
  }

let iter ?(since = neg_infinity) t f =
  let n = length t in
  for i = 0 to n - 1 do
    let j = (t.written - n + i) land t.mask in
    if t.c_end.(j) >= since then f (get t i)
  done

let to_list ?since t =
  let acc = ref [] in
  iter ?since t (fun s -> acc := s :: !acc);
  List.rev !acc

let fn_names t = Array.to_list (Array.sub t.names 0 t.n_names)

let clear t =
  t.written <- 0;
  t.seen <- 0;
  t.sampled <- 0
