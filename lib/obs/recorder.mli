(** Low-overhead span recorder — the observability layer's ingest.

    A structure-of-arrays ring buffer of completed-invocation records fed
    by {!Quilt_platform.Engine.span_sink}: one unboxed float/int column per
    field, function names interned to small ids, a flags byte per record.
    Recording a span is a handful of array stores — no allocation on the
    hot path once the name is interned — and the ring overwrites its
    oldest records when full, so a recorder never grows past its capacity.

    Head sampling is deterministic: the verdict for a root request id is a
    pure hash of [(seed, rid)], so equal seeds over equal traffic produce
    identical span streams (the property the qcheck pins in [test_obs]).
    Sampling 1/N keeps roughly one in [sample_period] root requests, and
    the whole call chain of a sampled request — remote hops, in-process
    member calls, CM calls — is recorded; unsampled requests touch nothing
    but one counter. *)

type span = {
  sp_rid : int;  (** Root request id; shared by every span of one chain. *)
  sp_fn : string;
  sp_caller : string option;  (** [None] at the client ingress. *)
  sp_cid : int;  (** Container id. *)
  sp_node : int;  (** Worker node (0 when the topology is flat). *)
  sp_send : float;  (** Caller issued the hop (µs). *)
  sp_enq : float;  (** Controller received it. *)
  sp_start : float;  (** Handler began executing. *)
  sp_end : float;  (** Completion. *)
  sp_cpu_us : float;  (** Modeled per-invocation CPU demand. *)
  sp_mem_mb : float;  (** Modeled per-invocation footprint. *)
  sp_async : bool;
  sp_local : bool;  (** In-process or CM member call (no network hop). *)
  sp_ok : bool;
}

val queue_us : span -> float
(** Time spent waiting for a container slot ([sp_start - sp_enq]). *)

val hop_us : span -> float
(** Request-leg network time ([sp_enq - sp_send]); 0 for local spans. *)

type t

val create : ?capacity:int -> ?sample_period:int -> ?seed:int -> unit -> t
(** [capacity] (default 2^18 spans, rounded up to a power of two) bounds
    the ring; [sample_period] (default 1: record everything) keeps ~1/N of
    root requests; [seed] (default 0) perturbs the sampling hash. *)

val sample_period : t -> int

val sink : t -> Quilt_platform.Engine.span_sink

val attach : t -> Quilt_platform.Engine.t -> unit
(** [attach t engine] installs {!sink} on the engine.  One recorder can
    observe at most one engine at a time meaningfully (container and
    request ids would collide otherwise). *)

val detach : Quilt_platform.Engine.t -> unit
(** Removes any installed sink, restoring the no-op fast path. *)

(** {1 Reading back} *)

val length : t -> int
(** Spans currently retained. *)

val recorded : t -> int
(** Spans ever recorded (monotone; [recorded - length] were overwritten). *)

val dropped : t -> int

val seen_roots : t -> int
(** Root requests the sampler was consulted for. *)

val sampled_roots : t -> int
(** Root requests whose chains were recorded. *)

val get : t -> int -> span
(** [get t i] is the i-th oldest retained span ([0 <= i < length t]).
    Spans are stored in completion order, so the sequence is sorted by
    [sp_end]. *)

val iter : ?since:float -> t -> (span -> unit) -> unit
(** Oldest to newest; [since] keeps spans with [sp_end >= since]. *)

val to_list : ?since:float -> t -> span list

val fn_names : t -> string list
(** Interned function names, in first-seen order. *)

val clear : t -> unit
(** Drops the retained spans and counters; keeps capacity, period, seed
    and the interning table. *)
