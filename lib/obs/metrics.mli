(** Labeled metrics registry — counters, gauges and histograms.

    The Prometheus-shaped replacement for the ad-hoc stat plumbing the CLI
    and benches used to hand-roll per command: every arm of a run folds its
    engine counters, load-generator results and recorder state into one
    registry, and a single {!snapshot} serializes everything.  Instruments
    are identified by (name, labels); registering the same identity twice
    returns the same instrument (so accumulation composes), registering it
    with a different kind raises [Invalid_argument].

    Histograms reuse {!Quilt_util.Histogram} (the HDR-style log-linear
    buckets every latency measurement in this repo already uses); the
    snapshot exports their non-empty buckets via
    {!Quilt_util.Histogram.iter_buckets}. *)

type t

val create : unit -> t

type counter
type gauge
type histogram

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
val inc : counter -> int -> unit
val counter_value : counter -> int

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : t -> ?help:string -> ?labels:(string * string) list -> string -> histogram
val observe : histogram -> float -> unit

val hist : histogram -> Quilt_util.Histogram.t
(** The backing histogram, for bulk accumulation
    ([Histogram.merge_into ~dst:(hist h) src]). *)

(** {1 Bridges}

    One-call folds of the existing result shapes into a registry. *)

val record_engine : t -> ?labels:(string * string) list -> Quilt_platform.Engine.t -> unit
(** Engine counters ([engine_*]), scheduler stats ([engine_events],
    [engine_peak_queue_depth]) and — when a cluster topology is installed —
    the hop/image/capacity counters ([topo_*]). *)

val record_result : t -> ?labels:(string * string) list -> Quilt_platform.Loadgen.result -> unit
(** Offered/success/failure counters, throughput gauge, and the latency
    distribution merged into the [latency_us] histogram. *)

val record_recorder : t -> ?labels:(string * string) list -> Recorder.t -> unit
(** Recorder ingest stats ([obs_spans_recorded], [obs_spans_dropped],
    [obs_roots_seen], [obs_roots_sampled]) plus per-span queue-time and
    CPU histograms folded from the retained spans. *)

(** {1 Snapshot} *)

val snapshot : t -> Quilt_util.Json.t
(** Deterministic (registration-ordered) JSON:
    [{"counters": [{name; labels; value}...],
      "gauges": [...],
      "histograms": [{name; labels; count; mean; p50; p99; max;
                      buckets: [[lo, hi, count]...]}...]}]. *)
