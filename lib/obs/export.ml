module Json = Quilt_util.Json

(* --- Chrome trace-event format --- *)

let span_event ~pid (s : Recorder.span) =
  let dur = Float.max 0.0 (s.Recorder.sp_end -. s.Recorder.sp_start) in
  let args =
    [
      ("rid", Json.Int s.Recorder.sp_rid);
      ("node", Json.Int s.Recorder.sp_node);
      ("queue_us", Json.Float (Recorder.queue_us s));
      ("hop_us", Json.Float (Recorder.hop_us s));
      ("cpu_us", Json.Float s.Recorder.sp_cpu_us);
      ("mem_mb", Json.Float s.Recorder.sp_mem_mb);
      ("ok", Json.Bool s.Recorder.sp_ok);
    ]
  in
  let args =
    match s.Recorder.sp_caller with
    | Some c -> ("caller", Json.String c) :: args
    | None -> args
  in
  Json.Obj
    [
      ("name", Json.String s.Recorder.sp_fn);
      ("cat", Json.String (if s.Recorder.sp_local then "local" else "task"));
      ("ph", Json.String "X");
      ("ts", Json.Float s.Recorder.sp_start);
      ("dur", Json.Float dur);
      ("pid", Json.Int pid);
      ("tid", Json.Int s.Recorder.sp_cid);
      ("args", Json.Obj args);
    ]

let process_name ~pid name =
  Json.Obj
    [
      ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let chrome_trace arms =
  let events = ref [] in
  List.iteri
    (fun pid (name, r) ->
      events := process_name ~pid name :: !events;
      Recorder.iter r (fun s -> events := span_event ~pid s :: !events))
    arms;
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !events));
      ("displayTimeUnit", Json.String "ms");
    ]

(* --- Folded flamegraph stacks --- *)

(* Stack reconstruction: a span's parent is the span of the same request
   whose function matches its recorded caller and whose execution interval
   contains the child's start — the tightest such enclosure when several
   invocations of the caller overlap.  Weight is the span's own modeled
   CPU, so merged chains fold into one tall tower over the merged entry
   while the unmerged baseline spreads across roots. *)
let folded ?prefix r =
  let by_rid : (int, Recorder.span list ref) Hashtbl.t = Hashtbl.create 64 in
  Recorder.iter r (fun s ->
      match Hashtbl.find_opt by_rid s.Recorder.sp_rid with
      | Some l -> l := s :: !l
      | None -> Hashtbl.add by_rid s.Recorder.sp_rid (ref [ s ]));
  let stacks : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let root = match prefix with Some p -> [ p ] | None -> [] in
  Hashtbl.iter
    (fun _ spans ->
      let spans = Array.of_list !spans in
      let parent_of i =
        let s = spans.(i) in
        match s.Recorder.sp_caller with
        | None -> None
        | Some caller ->
            let best = ref None in
            Array.iteri
              (fun j (p : Recorder.span) ->
                if
                  j <> i
                  && String.equal p.Recorder.sp_fn caller
                  && p.Recorder.sp_start <= s.Recorder.sp_send
                  && p.Recorder.sp_end >= s.Recorder.sp_send
                then
                  match !best with
                  | Some (_, bs) when bs >= p.Recorder.sp_start -> ()
                  | _ -> best := Some (j, p.Recorder.sp_start))
              spans;
            Option.map fst !best
      in
      let rec stack_of i depth =
        if depth > 64 then [ spans.(i).Recorder.sp_fn ]
        else
          match parent_of i with
          | None -> [ spans.(i).Recorder.sp_fn ]
          | Some p -> spans.(i).Recorder.sp_fn :: stack_of p (depth + 1)
      in
      Array.iteri
        (fun i (s : Recorder.span) ->
          let frames = root @ List.rev (stack_of i 0) in
          let key = String.concat ";" frames in
          let w = max 1 (int_of_float (Float.round s.Recorder.sp_cpu_us)) in
          match Hashtbl.find_opt stacks key with
          | Some n -> Hashtbl.replace stacks key (n + w)
          | None -> Hashtbl.add stacks key w)
        spans)
    by_rid;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) stacks []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let folded_to_string lines =
  let b = Buffer.create 4096 in
  List.iter (fun (stack, w) -> Buffer.add_string b (Printf.sprintf "%s %d\n" stack w)) lines;
  Buffer.contents b

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
