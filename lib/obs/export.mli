(** Exporters: Chrome trace-event JSON, folded flamegraph stacks, files.

    - {!chrome_trace} emits the Trace Event Format (the JSON array form)
      that [chrome://tracing] and Perfetto load: one ["X"] complete event
      per span, [pid] = arm index (each named arm renders as its own
      process, labeled via ["process_name"] metadata), [tid] = container
      id — so a merged arm visually collapses onto few tracks while the
      unmerged baseline fans out across containers.
    - {!folded} produces Brendan Gregg's folded-stacks format
      ([root;child;leaf weight] lines): call stacks are reconstructed per
      traced request by caller-name and interval containment, weighted by
      each span's modeled CPU (µs), ready for [flamegraph.pl] or speedscope. *)

val chrome_trace : (string * Recorder.t) list -> Quilt_util.Json.t
(** [chrome_trace arms] with one [(name, recorder)] per arm. *)

val folded : ?prefix:string -> Recorder.t -> (string * int) list
(** Aggregated [stack, weight] pairs, sorted by stack; [prefix] roots
    every stack under an arm label (for merged-vs-unmerged diffs in one
    graph). *)

val folded_to_string : (string * int) list -> string
(** One [stack weight\n] line each. *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)
