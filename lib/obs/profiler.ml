module Trace = Quilt_tracing.Trace
module Builder = Quilt_tracing.Builder

(* Per-(container, function) cumulative cell, mirroring the engine's §8
   monitor cells: Builder aggregates cumulative series by taking per-
   container maxima and summing, so feeding it the running totals here
   reproduces the ground-truth aggregation over the sampled population. *)
type cell = { mutable cum_cpu : float; mutable cum_inv : int; mutable peak : float }

let to_trace ?(since = neg_infinity) r =
  let st = Trace.create () in
  let cells : (int * string, cell) Hashtbl.t = Hashtbl.create 64 in
  (* The ring stores spans in completion order; re-sort by send time so
     the synthesized store lists spans in invocation order, like the
     ground-truth store (Builder's vertex discovery follows span order). *)
  let spans = Recorder.to_list ~since r in
  let by_send =
    List.stable_sort (fun a b -> compare a.Recorder.sp_send b.Recorder.sp_send) spans
  in
  List.iter
    (fun (s : Recorder.span) ->
      Trace.record_span st
        {
          Trace.ts = s.Recorder.sp_send;
          caller = s.Recorder.sp_caller;
          callee = s.Recorder.sp_fn;
          kind = (if s.Recorder.sp_async then Trace.Async else Trace.Sync);
        })
    by_send;
  List.iter
    (fun (s : Recorder.span) ->
      let key = (s.Recorder.sp_cid, s.Recorder.sp_fn) in
      let c =
        match Hashtbl.find_opt cells key with
        | Some c -> c
        | None ->
            let c = { cum_cpu = 0.0; cum_inv = 0; peak = 0.0 } in
            Hashtbl.add cells key c;
            c
      in
      c.cum_cpu <- c.cum_cpu +. s.Recorder.sp_cpu_us;
      c.cum_inv <- c.cum_inv + 1;
      c.peak <- Float.max c.peak s.Recorder.sp_mem_mb;
      Trace.record_resource st
        {
          Trace.rs_ts = s.Recorder.sp_end;
          container = s.Recorder.sp_cid;
          fn = s.Recorder.sp_fn;
          cpu_us_cum = c.cum_cpu;
          mem_mb = c.peak;
          invocations_cum = c.cum_inv;
        })
    spans;
  st

let callgraph ?since ?(code_edges = []) ~entry r =
  let st = to_trace ?since r in
  match Builder.build st ~entry () with
  | Error _ as e -> e
  | Ok g -> Ok (Builder.known_calls ~code_edges g)

let invocations ?since ~entry r =
  let n = ref 0 in
  Recorder.iter ?since r (fun s ->
      if s.Recorder.sp_caller = None && String.equal s.Recorder.sp_fn entry then incr n);
  !n

type fn_profile = {
  fp_fn : string;
  fp_calls : int;
  fp_cpu_ms : float;
  fp_mem_mb : float;
  fp_queue_ms : float;
  fp_fail : int;
}

type acc = {
  mutable a_calls : int;
  mutable a_cpu : float;
  mutable a_mem : float;
  mutable a_queue : float;
  mutable a_remote : int;
  mutable a_fail : int;
}

let profiles ?since r =
  let tbl : (string, acc) Hashtbl.t = Hashtbl.create 16 in
  Recorder.iter ?since r (fun s ->
      let a =
        match Hashtbl.find_opt tbl s.Recorder.sp_fn with
        | Some a -> a
        | None ->
            let a =
              { a_calls = 0; a_cpu = 0.0; a_mem = 0.0; a_queue = 0.0; a_remote = 0; a_fail = 0 }
            in
            Hashtbl.add tbl s.Recorder.sp_fn a;
            a
      in
      a.a_calls <- a.a_calls + 1;
      a.a_cpu <- a.a_cpu +. s.Recorder.sp_cpu_us;
      a.a_mem <- Float.max a.a_mem s.Recorder.sp_mem_mb;
      if not s.Recorder.sp_local then begin
        a.a_remote <- a.a_remote + 1;
        a.a_queue <- a.a_queue +. Recorder.queue_us s
      end;
      if not s.Recorder.sp_ok then a.a_fail <- a.a_fail + 1);
  Hashtbl.fold
    (fun fn a acc ->
      {
        fp_fn = fn;
        fp_calls = a.a_calls;
        fp_cpu_ms = (if a.a_calls = 0 then 0.0 else a.a_cpu /. float_of_int a.a_calls /. 1000.0);
        fp_mem_mb = a.a_mem;
        fp_queue_ms =
          (if a.a_remote = 0 then 0.0 else a.a_queue /. float_of_int a.a_remote /. 1000.0);
        fp_fail = a.a_fail;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.fp_fn b.fp_fn)

let edge_counts ?since r =
  let tbl : (string option * string, int ref) Hashtbl.t = Hashtbl.create 16 in
  Recorder.iter ?since r (fun s ->
      let key = (s.Recorder.sp_caller, s.Recorder.sp_fn) in
      match Hashtbl.find_opt tbl key with
      | Some n -> incr n
      | None -> Hashtbl.add tbl key (ref 1));
  Hashtbl.fold (fun k n acc -> (k, !n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
