module Histogram = Quilt_util.Histogram
module Json = Quilt_util.Json
module Engine = Quilt_platform.Engine
module Loadgen = Quilt_platform.Loadgen

type value = Counter of int ref | Gauge of float ref | Hist of Histogram.t

type instrument = {
  i_name : string;
  i_labels : (string * string) list;
  i_help : string;
  i_value : value;
}

type t = {
  tbl : (string, instrument) Hashtbl.t;  (* keyed by name + canonical labels *)
  mutable order : string list;  (* registration order, reversed *)
}

type counter = int ref
type gauge = float ref
type histogram = Histogram.t

let create () = { tbl = Hashtbl.create 32; order = [] }

let canonical_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let key name labels =
  let b = Buffer.create 32 in
  Buffer.add_string b name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b '\x00';
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b v)
    labels;
  Buffer.contents b

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Hist _ -> "histogram"

let register t ~help ~labels name fresh =
  let labels = canonical_labels labels in
  let k = key name labels in
  match Hashtbl.find_opt t.tbl k with
  | Some i ->
      if kind_name i.i_value <> kind_name (fresh ()) then
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered as a %s" name (kind_name i.i_value));
      i.i_value
  | None ->
      let i = { i_name = name; i_labels = labels; i_help = help; i_value = fresh () } in
      Hashtbl.add t.tbl k i;
      t.order <- k :: t.order;
      i.i_value

let counter t ?(help = "") ?(labels = []) name =
  match register t ~help ~labels name (fun () -> Counter (ref 0)) with
  | Counter r -> r
  | _ -> assert false

let inc c by = c := !c + by
let counter_value c = !c

let gauge t ?(help = "") ?(labels = []) name =
  match register t ~help ~labels name (fun () -> Gauge (ref 0.0)) with
  | Gauge r -> r
  | _ -> assert false

let set g v = g := v
let gauge_value g = !g

let histogram t ?(help = "") ?(labels = []) name =
  match register t ~help ~labels name (fun () -> Hist (Histogram.create ())) with
  | Hist h -> h
  | _ -> assert false

let observe h v = Histogram.record h v
let hist h = h

(* --- Bridges --- *)

let record_engine t ?(labels = []) engine =
  let c = Engine.counters engine in
  let add name v = inc (counter t ~labels name) v in
  add "engine_cold_starts" c.Engine.cold_starts;
  add "engine_oom_kills" c.Engine.oom_kills;
  add "engine_completed" c.Engine.completed;
  add "engine_failed" c.Engine.failed;
  add "engine_remote_invocations" c.Engine.remote_invocations;
  add "engine_local_invocations" c.Engine.local_invocations;
  add "engine_crash_kills" c.Engine.crash_kills;
  add "engine_net_drops" c.Engine.net_drops;
  add "engine_hop_timeouts" c.Engine.hop_timeouts;
  add "engine_events" (Engine.events_processed engine);
  set (gauge t ~labels "engine_peak_queue_depth") (float_of_int (Engine.peak_queue_depth engine));
  match Engine.topology engine with
  | Quilt_place.Topology.Flat -> ()
  | Quilt_place.Topology.Cluster _ ->
      let h = Engine.topo_counters engine in
      add "topo_hops_same_node" h.Engine.hops_same_node;
      add "topo_hops_same_rack" h.Engine.hops_same_rack;
      add "topo_hops_cross_rack" h.Engine.hops_cross_rack;
      add "topo_image_cache_hits" h.Engine.image_cache_hits;
      add "topo_capacity_denials" h.Engine.capacity_denials

let record_result t ?(labels = []) (r : Loadgen.result) =
  inc (counter t ~labels "requests_offered") r.Loadgen.offered;
  inc (counter t ~labels "requests_succeeded") r.Loadgen.successes;
  inc (counter t ~labels "requests_failed") r.Loadgen.failures;
  set (gauge t ~labels "throughput_rps") r.Loadgen.throughput_rps;
  Histogram.merge_into ~dst:(histogram t ~labels "latency_us") r.Loadgen.latencies

let record_recorder t ?(labels = []) r =
  inc (counter t ~labels "obs_spans_recorded") (Recorder.recorded r);
  inc (counter t ~labels "obs_spans_dropped") (Recorder.dropped r);
  inc (counter t ~labels "obs_roots_seen") (Recorder.seen_roots r);
  inc (counter t ~labels "obs_roots_sampled") (Recorder.sampled_roots r);
  let queue = histogram t ~labels "obs_span_queue_us" in
  let cpu = histogram t ~labels "obs_span_cpu_us" in
  Recorder.iter r (fun s ->
      if not s.Recorder.sp_local then observe queue (Recorder.queue_us s);
      observe cpu s.Recorder.sp_cpu_us)

(* --- Snapshot --- *)

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let hist_json (i : instrument) h =
  let buckets = ref [] in
  Histogram.iter_buckets h (fun ~lo ~hi ~count ->
      buckets := Json.List [ Json.Float lo; Json.Float hi; Json.Int count ] :: !buckets);
  Json.Obj
    [
      ("name", Json.String i.i_name);
      ("labels", labels_json i.i_labels);
      ("count", Json.Int (Histogram.count h));
      ("mean", Json.Float (Histogram.mean h));
      ("p50", Json.Float (Histogram.median h));
      ("p99", Json.Float (Histogram.quantile h 0.99));
      ("max", Json.Float (Histogram.max_value h));
      ("buckets", Json.List (List.rev !buckets));
    ]

let snapshot t =
  let ordered = List.rev t.order in
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (fun k ->
      let i = Hashtbl.find t.tbl k in
      let base v =
        Json.Obj [ ("name", Json.String i.i_name); ("labels", labels_json i.i_labels); ("value", v) ]
      in
      match i.i_value with
      | Counter r -> counters := base (Json.Int !r) :: !counters
      | Gauge r -> gauges := base (Json.Float !r) :: !gauges
      | Hist h -> hists := hist_json i h :: !hists)
    ordered;
  Json.Obj
    [
      ("counters", Json.List (List.rev !counters));
      ("gauges", Json.List (List.rev !gauges));
      ("histograms", Json.List (List.rev !hists));
    ]
