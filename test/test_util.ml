(* Unit and property tests for quilt_util: JSON, RNG, heap, histogram, stats. *)

module Json = Quilt_util.Json
module Rng = Quilt_util.Rng
module Heap = Quilt_util.Heap
module Histogram = Quilt_util.Histogram
module Stats = Quilt_util.Stats

let check_json = Alcotest.testable Json.pp Json.equal

(* --- JSON --- *)

let test_json_roundtrip_basic () =
  let v =
    Json.Obj
      [
        ("name", Json.String "compose-post");
        ("count", Json.Int 42);
        ("ratio", Json.Float 0.5);
        ("flag", Json.Bool true);
        ("nothing", Json.Null);
        ("items", Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]);
      ]
  in
  let s = Json.to_string v in
  Alcotest.check check_json "roundtrip" v (Json.of_string s)

let test_json_parse_whitespace () =
  let v = Json.of_string "  { \"a\" : [ 1 , 2 ] ,\n \"b\" : \"x\" }  " in
  Alcotest.check check_json "ws" (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]); ("b", Json.String "x") ]) v

let test_json_escapes () =
  let v = Json.String "line1\nline2\t\"quoted\"\\back" in
  Alcotest.check check_json "escapes" v (Json.of_string (Json.to_string v));
  let parsed = Json.of_string "\"\\u0041\\u00e9\"" in
  Alcotest.(check string) "unicode" "A\xc3\xa9" (match parsed with Json.String s -> s | _ -> "?")

let test_json_nested () =
  let s = "{\"a\":{\"b\":{\"c\":[{\"d\":1}]}}}" in
  let v = Json.of_string s in
  let d = Json.(member "a" v |> member "b" |> member "c" |> to_list) in
  match d with
  | [ item ] -> Alcotest.(check (option int)) "deep member" (Some 1) Json.(to_int_opt (member "d" item))
  | _ -> Alcotest.fail "expected singleton list"

let test_json_errors () =
  let bad = [ "{"; "[1,"; "\"unterminated"; "{\"a\" 1}"; "tru"; "[1 2]"; "{\"a\":1} x"; "" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "expected parse error on %S" s))
    bad

let test_json_member_total () =
  Alcotest.check check_json "missing member" Json.Null (Json.member "x" (Json.Obj []));
  Alcotest.check check_json "member of non-object" Json.Null (Json.member "x" (Json.Int 3));
  Alcotest.(check (list reject)) "to_list of non-list is []" []
    (List.map (fun _ -> Alcotest.fail "impossible") (Json.to_list (Json.Int 3)))

let test_json_negative_numbers () =
  Alcotest.check check_json "neg int" (Json.Int (-17)) (Json.of_string "-17");
  Alcotest.check check_json "neg float" (Json.Float (-2.5)) (Json.of_string "-2.5")

let prop_json_roundtrip =
  let open QCheck in
  let rec gen_json depth =
    let open Gen in
    if depth = 0 then
      oneof
        [
          return Json.Null;
          map (fun b -> Json.Bool b) bool;
          map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
          map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 12));
        ]
    else
      oneof
        [
          map (fun i -> Json.Int i) (int_range (-1000) 1000);
          map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 8));
          map (fun l -> Json.List l) (list_size (int_range 0 4) (gen_json (depth - 1)));
          map
            (fun kvs -> Json.Obj (List.mapi (fun i (k, v) -> (Printf.sprintf "%s%d" k i, v)) kvs))
            (list_size (int_range 0 4) (pair (string_size ~gen:(Gen.char_range 'a' 'z') (int_range 1 5)) (gen_json (depth - 1))));
        ]
  in
  Test.make ~name:"json roundtrip (of_string . to_string = id)" ~count:300
    (make (gen_json 3))
    (fun v -> Json.equal v (Json.of_string (Json.to_string v)))

(* --- RNG --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10);
    let v = Rng.int_in r 5 9 in
    Alcotest.(check bool) "in closed range" true (v >= 5 && v <= 9);
    let f = Rng.float r 2.0 in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 2.0)
  done

let test_rng_split_independent () =
  let r = Rng.create 1 in
  let s = Rng.split r in
  let v1 = Rng.bits64 s in
  let v2 = Rng.bits64 r in
  Alcotest.(check bool) "different streams" true (v1 <> v2)

let test_rng_exponential_mean () =
  let r = Rng.create 99 in
  let n = 20000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential r 5.0
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 5" true (mean > 4.6 && mean < 5.4)

let test_rng_shuffle_permutes () =
  let r = Rng.create 3 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 (fun i -> i)) sorted

(* --- Heap --- *)

let test_heap_ordering () =
  let h = Heap.create () in
  let r = Rng.create 11 in
  let items = List.init 500 (fun _ -> float_of_int (Rng.int r 1000)) in
  List.iter (fun p -> Heap.push h p p) items;
  let rec drain acc =
    match Heap.pop h with
    | None -> List.rev acc
    | Some (p, _) -> drain (p :: acc)
  in
  let out = drain [] in
  Alcotest.(check (list (float 0.0))) "sorted" (List.sort compare items) out

let test_heap_fifo_ties () =
  let h = Heap.create () in
  Heap.push h 1.0 "a";
  Heap.push h 1.0 "b";
  Heap.push h 1.0 "c";
  let got = List.init 3 (fun _ -> match Heap.pop h with Some (_, v) -> v | None -> "?") in
  Alcotest.(check (list string)) "insertion order on ties" [ "a"; "b"; "c" ] got

let test_heap_empty () =
  let h : unit Heap.t = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None)

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h 1.0 "a";
  Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Heap.is_empty h);
  Heap.push h 2.0 "b";
  Alcotest.(check bool) "usable after clear" true (Heap.pop h = Some (2.0, "b"))

let test_heap_peek_stable () =
  let h = Heap.create () in
  Heap.push h 5.0 "x";
  Heap.push h 2.0 "y";
  Alcotest.(check bool) "peek min" true (Heap.peek h = Some (2.0, "y"));
  Alcotest.(check int) "length" 2 (Heap.length h)

let prop_heap_sorts =
  let open QCheck in
  Test.make ~name:"heap drains in sorted order" ~count:200
    (list (int_range (-1000) 1000))
    (fun items ->
      let items = List.map float_of_int items in
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h p ()) items;
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some (p, ()) -> drain (p :: acc) in
      drain [] = List.sort compare items)

(* --- Histogram --- *)

let test_histogram_quantiles () =
  let h = Histogram.create () in
  for i = 1 to 10000 do
    Histogram.record h (float_of_int i)
  done;
  let med = Histogram.median h in
  Alcotest.(check bool) "median ~5000" true (Float.abs (med -. 5000.0) /. 5000.0 < 0.03);
  let p99 = Histogram.quantile h 0.99 in
  Alcotest.(check bool) "p99 ~9900" true (Float.abs (p99 -. 9900.0) /. 9900.0 < 0.03)

let test_histogram_mean_count () =
  let h = Histogram.create () in
  Histogram.record h 10.0;
  Histogram.record h 20.0;
  Histogram.record_n h 30.0 2;
  Alcotest.(check int) "count" 4 (Histogram.count h);
  Alcotest.(check (float 0.001)) "mean" 22.5 (Histogram.mean h);
  Alcotest.(check (float 0.001)) "max" 30.0 (Histogram.max_value h);
  Alcotest.(check (float 0.001)) "min" 10.0 (Histogram.min_value h)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.record a 100.0;
  Histogram.record b 200.0;
  Histogram.merge_into ~dst:a b;
  Alcotest.(check int) "merged count" 2 (Histogram.count a);
  Alcotest.(check bool) "merged max" true (Histogram.max_value a = 200.0)

let test_histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check (float 0.0)) "median of empty" 0.0 (Histogram.median h);
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Histogram.mean h)

(* Quantiles are clamped into [min, max]: a single observation must come
   back exactly (not its bucket's midpoint), and p0/p100 must pin to the
   recorded extremes at any population. *)
let test_histogram_quantile_edges () =
  let h = Histogram.create () in
  Histogram.record h 100.0;
  Alcotest.(check (float 0.0)) "single obs: p0 exact" 100.0 (Histogram.quantile h 0.0);
  Alcotest.(check (float 0.0)) "single obs: median exact" 100.0 (Histogram.median h);
  Alcotest.(check (float 0.0)) "single obs: p100 exact" 100.0 (Histogram.quantile h 1.0);
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 10.0; 55.0; 300.0; 4000.0 ];
  Alcotest.(check (float 0.0)) "p0 = min" 10.0 (Histogram.quantile h 0.0);
  Alcotest.(check (float 0.0)) "p100 = max" 4000.0 (Histogram.quantile h 1.0);
  Alcotest.(check bool) "interior quantiles stay within range" true
    (List.for_all
       (fun q ->
         let v = Histogram.quantile h q in
         v >= 10.0 && v <= 4000.0)
       [ 0.25; 0.5; 0.75; 0.9; 0.99 ])

let test_histogram_merge_counts_and_quantiles () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.record a) [ 10.0; 20.0; 30.0 ];
  Histogram.record_n b 1000.0 5;
  Histogram.merge_into ~dst:a b;
  Alcotest.(check int) "counts add" 8 (Histogram.count a);
  Alcotest.(check (float 0.0)) "min survives the merge" 10.0 (Histogram.min_value a);
  Alcotest.(check (float 0.0)) "p100 is the merged max" 1000.0 (Histogram.quantile a 1.0);
  Alcotest.(check (float 0.001)) "mean over the union" 632.5 (Histogram.mean a);
  (* 5 of 8 observations sit at 1000, so the median is in that bucket. *)
  Alcotest.(check bool) "median from the dominant source" true
    (Float.abs (Histogram.median a -. 1000.0) /. 1000.0 < 0.02);
  Alcotest.(check int) "source unchanged" 5 (Histogram.count b)

let test_histogram_bucket_iteration () =
  let h = Histogram.create () in
  let values = [ 3.0; 3.4; 70.0; 900.0; 900.0; 123456.0 ] in
  List.iter (Histogram.record h) values;
  let total = ref 0 and nonempty = ref 0 in
  Histogram.iter_buckets h (fun ~lo ~hi ~count ->
      incr nonempty;
      total := !total + count;
      Alcotest.(check bool) "bucket range well-formed" true (lo < hi && lo >= 0.0);
      Alcotest.(check bool) "some recorded value falls in [lo, hi)" true
        (List.exists (fun v -> v >= lo && v < hi) values));
  Alcotest.(check int) "bucket counts sum to the population" (Histogram.count h) !total;
  Alcotest.(check int) "iteration visits each non-empty bucket once"
    (Histogram.num_nonempty_buckets h)
    !nonempty;
  (* 3.0 and 3.4 share a unit bucket; the other values are distinct. *)
  Alcotest.(check int) "nearby values coalesce" 4 !nonempty;
  Histogram.reset h;
  Histogram.iter_buckets h (fun ~lo:_ ~hi:_ ~count:_ ->
      Alcotest.fail "reset histogram has no buckets to visit")

let test_histogram_relative_error () =
  let h = Histogram.create () in
  let v = 123456.0 in
  Histogram.record h v;
  let got = Histogram.quantile h 0.5 in
  Alcotest.(check bool) "bounded relative error" true (Float.abs (got -. v) /. v < 0.02)

let prop_histogram_median_error =
  let open QCheck in
  Test.make ~name:"histogram median within 2% of exact" ~count:100
    (list_of_size (Gen.int_range 1 200) (float_range 1.0 1e6))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) xs;
      let exact = Stats.median xs in
      let got = Histogram.median h in
      Float.abs (got -. exact) /. exact < 0.02)

(* --- Stats --- *)

let test_stats_basic () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median xs);
  Alcotest.(check (float 1e-6)) "stdev" (sqrt 2.5) (Stats.stdev xs);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs 1.0);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.minimum xs);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.maximum xs)

let test_stats_empty () =
  Alcotest.(check (float 0.0)) "mean []" 0.0 (Stats.mean []);
  Alcotest.(check (float 0.0)) "stdev []" 0.0 (Stats.stdev []);
  Alcotest.(check (float 0.0)) "median []" 0.0 (Stats.median [])

let suite =
  [
    ( "util.json",
      [
        Alcotest.test_case "roundtrip basic" `Quick test_json_roundtrip_basic;
        Alcotest.test_case "whitespace" `Quick test_json_parse_whitespace;
        Alcotest.test_case "escapes" `Quick test_json_escapes;
        Alcotest.test_case "nested access" `Quick test_json_nested;
        Alcotest.test_case "parse errors" `Quick test_json_errors;
        Alcotest.test_case "total accessors" `Quick test_json_member_total;
        Alcotest.test_case "negative numbers" `Quick test_json_negative_numbers;
        QCheck_alcotest.to_alcotest prop_json_roundtrip;
      ] );
    ( "util.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "bounds" `Quick test_rng_bounds;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
      ] );
    ( "util.heap",
      [
        Alcotest.test_case "ordering" `Quick test_heap_ordering;
        Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
        Alcotest.test_case "empty" `Quick test_heap_empty;
        Alcotest.test_case "peek" `Quick test_heap_peek_stable;
        Alcotest.test_case "clear" `Quick test_heap_clear;
        QCheck_alcotest.to_alcotest prop_heap_sorts;
      ] );
    ( "util.histogram",
      [
        Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
        Alcotest.test_case "mean and count" `Quick test_histogram_mean_count;
        Alcotest.test_case "merge" `Quick test_histogram_merge;
        Alcotest.test_case "quantile edges (p0/p100, single obs)" `Quick
          test_histogram_quantile_edges;
        Alcotest.test_case "merge counts and quantiles" `Quick
          test_histogram_merge_counts_and_quantiles;
        Alcotest.test_case "bucket iteration" `Quick test_histogram_bucket_iteration;
        Alcotest.test_case "empty" `Quick test_histogram_empty;
        Alcotest.test_case "relative error" `Quick test_histogram_relative_error;
        QCheck_alcotest.to_alcotest prop_histogram_median_error;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "basic" `Quick test_stats_basic;
        Alcotest.test_case "empty" `Quick test_stats_empty;
      ] );
  ]
