(* Tests for quilt_platform + quilt_tracing + quilt_core: the simulator's
   latency anatomy, scaling, OOM and throttling behaviour, profiling, and
   the end-to-end optimizer. *)

module Engine = Quilt_platform.Engine
module Loadgen = Quilt_platform.Loadgen
module Params = Quilt_platform.Params
module Calltree = Quilt_platform.Calltree
module Trace = Quilt_tracing.Trace
module Builder = Quilt_tracing.Builder
module Callgraph = Quilt_dag.Callgraph
module Workflow = Quilt_apps.Workflow
module Deathstar = Quilt_apps.Deathstar
module Special = Quilt_apps.Special
module Config = Quilt_core.Config
module Deploy = Quilt_core.Deploy
module Quilt = Quilt_core.Quilt
module Rng = Quilt_util.Rng

let cfg = Config.default

let noop_wf = Special.noop ()

let fresh ?(workflows = [ noop_wf ]) () = Quilt.fresh_platform ~workflows ()

(* --- Calltree --- *)

let test_calltree_structure () =
  let wfs = Deathstar.social_network ~async:false () in
  let compose = List.find (fun w -> w.Workflow.wf_name = "compose-post") wfs in
  let reg = Workflow.registry wfs in
  let node = Calltree.build reg ~entry:"compose-post" ~req:"{\"data\":\"x\"}" in
  Alcotest.(check string) "root fn" "compose-post" node.Calltree.fn;
  Alcotest.(check int) "11 distinct functions" 11 (List.length (Calltree.functions node));
  Alcotest.(check bool) "has cpu" true (Calltree.total_cpu_us node > 0.0);
  ignore compose

let test_calltree_async_has_futures () =
  let wfs = Deathstar.social_network ~async:true () in
  let reg = Workflow.registry wfs in
  let node = Calltree.build reg ~entry:"compose-post" ~req:"{\"data\":\"x\"}" in
  let rec count_async n =
    List.fold_left
      (fun acc p ->
        match p with
        | Calltree.Call { kind = Quilt_tracing.Trace.Async; child; _ } -> acc + 1 + count_async child
        | Calltree.Call { child; _ } -> acc + count_async child
        | _ -> acc)
      0 n.Calltree.phases
  in
  Alcotest.(check bool) "async calls present" true (count_async node > 0)

(* --- Latency anatomy --- *)

let run_one engine ~entry ~req =
  let result = ref None in
  Engine.submit engine ~entry ~req ~on_done:(fun ~latency_us ~ok -> result := Some (latency_us, ok));
  Engine.drain engine;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "request never completed"

let test_single_request_latency_anatomy () =
  let engine = fresh () in
  let req = "{\"data\":\"n1\"}" in
  let lat, ok = run_one engine ~entry:"noop" ~req in
  Alcotest.(check bool) "success" true ok;
  (* Cold start dominates the first request. *)
  Alcotest.(check bool) "first request pays a cold start" true (lat > 100_000.0);
  (* A warm request is a few ms: two legs plus negligible work. *)
  let lat2, _ = run_one engine ~entry:"noop" ~req in
  Alcotest.(check bool) "warm request in the single-digit ms" true (lat2 > 1_000.0 && lat2 < 10_000.0);
  Alcotest.(check int) "one cold start" 1 (Engine.counters engine).Engine.cold_starts

let test_remote_overhead_scales_with_depth () =
  let wfs = Deathstar.social_network ~async:false () in
  let engine = Quilt.fresh_platform ~workflows:wfs () in
  let req = "{\"data\":\"p1\"}" in
  let _ = run_one engine ~entry:"read-home-timeline" ~req in
  let shallow, _ = run_one engine ~entry:"read-home-timeline" ~req in
  let _ = run_one engine ~entry:"compose-post" ~req in
  let deep, _ = run_one engine ~entry:"compose-post" ~req in
  Alcotest.(check bool) "more functions, more invocation overhead" true (deep > shallow)

(* --- Merged vs baseline --- *)

let graph_of wf =
  match Quilt.profile cfg ~workflows:[ wf ] wf with
  | Ok g -> g
  | Error e -> Alcotest.fail ("profiling failed: " ^ e)

let solution_for wf =
  match Quilt.optimize ~graph:(graph_of wf) cfg ~workflows:[ wf ] wf with
  | Ok t -> t
  | Error e -> Alcotest.fail e

let test_profile_builds_expected_graph () =
  let wfs = Deathstar.social_network ~async:false () in
  let compose = List.find (fun w -> w.Workflow.wf_name = "compose-post") wfs in
  let g = graph_of compose in
  Alcotest.(check int) "11 vertices" 11 (Callgraph.n_nodes g);
  Alcotest.(check string) "root" "compose-post" (Callgraph.node g g.Callgraph.root).Callgraph.name;
  (* Every code edge observed: the workflow is deterministic. *)
  Alcotest.(check int) "11 edges" (List.length compose.Workflow.code_edges) (List.length g.Callgraph.edges);
  (* Weights proportional to N. *)
  List.iter
    (fun (e : Callgraph.edge) -> Alcotest.(check int) "alpha 1 for single calls" 1 (Callgraph.alpha g e))
    g.Callgraph.edges;
  (* Resources were profiled. *)
  Array.iter
    (fun (n : Callgraph.node) ->
      Alcotest.(check bool) (n.Callgraph.name ^ " has cpu") true (n.Callgraph.cpu > 0.0);
      Alcotest.(check bool) (n.Callgraph.name ^ " has mem") true (n.Callgraph.mem_mb > 0.0))
    g.Callgraph.nodes

let test_optimize_merges_whole_workflow () =
  let wfs = Deathstar.social_network ~async:false () in
  let compose = List.find (fun w -> w.Workflow.wf_name = "compose-post") wfs in
  let t = solution_for compose in
  (* §7.3.1: with 2 vCPU / 128 MB the decision merges the whole workflow. *)
  Alcotest.(check int) "single group" 1 (List.length t.Quilt.solution.Quilt_cluster.Types.subgraphs);
  Alcotest.(check int) "one merged deployment" 1 (List.length t.Quilt.deployments);
  Alcotest.(check int) "no cut edges" 0 t.Quilt.solution.Quilt_cluster.Types.cost

let test_merged_latency_beats_baseline () =
  let wfs = Deathstar.social_network ~async:false () in
  let compose = List.find (fun w -> w.Workflow.wf_name = "compose-post") wfs in
  let t = solution_for compose in
  let run engine =
    let r =
      Loadgen.run_closed_loop engine ~entry:"compose-post" ~gen_req:compose.Workflow.gen_req
        ~connections:1 ~duration_us:20_000_000.0 ()
    in
    Loadgen.median_ms r
  in
  let baseline_engine = Quilt.fresh_platform ~workflows:wfs () in
  let baseline = run baseline_engine in
  let quilt_engine = Quilt.fresh_platform ~workflows:wfs () in
  Quilt.apply quilt_engine t;
  let merged = run quilt_engine in
  let improvement = (baseline -. merged) /. baseline in
  Alcotest.(check bool)
    (Printf.sprintf "merged improves median latency (baseline %.2fms, quilt %.2fms)" baseline merged)
    true
    (improvement > 0.30);
  (* All member-internal invocations became local. *)
  let c = Engine.counters quilt_engine in
  Alcotest.(check bool) "local invocations happened" true (c.Engine.local_invocations > 0)

let test_rollback_restores_baseline () =
  let wfs = Deathstar.social_network ~async:false () in
  let compose = List.find (fun w -> w.Workflow.wf_name = "compose-post") wfs in
  let t = solution_for compose in
  let engine = Quilt.fresh_platform ~workflows:wfs () in
  Quilt.apply engine t;
  Quilt.rollback engine cfg t;
  let req = "{\"data\":\"p2\"}" in
  let _ = run_one engine ~entry:"compose-post" ~req in
  let c = Engine.counters engine in
  (* After rollback the workflow again fans out remotely. *)
  Alcotest.(check bool) "remote invocations resumed" true (c.Engine.remote_invocations >= 10)

(* --- Conditional overflow in the engine --- *)

let test_engine_guard_overflow () =
  let wf = Special.fan_out ~callee_mem_mb:10 () in
  let engine = Quilt.fresh_platform ~workflows:[ wf ] () in
  (* Merged deployment with alpha = 8 on the fan-out edge. *)
  Engine.deploy engine
    {
      Engine.service = "fan-out";
      vcpus = 2.0;
      mem_limit_mb = 128.0;
      base_mem_mb = 10.0;
      image_mb = 30.0;
      max_scale = 10;
      eager_http = false;
      mode =
        Engine.Merged
          { members = [ "fan-out"; "fan-out-worker" ]; guard = (fun ~caller:_ ~callee:_ -> Some 8) };
    };
  (* Warm the container first so latency comparisons exclude cold starts. *)
  let _ = run_one engine ~entry:"fan-out" ~req:"{\"num\":1}" in
  let lat_below, ok1 = run_one engine ~entry:"fan-out" ~req:"{\"num\":6}" in
  let c1 = Engine.counters engine in
  Alcotest.(check bool) "below alpha ok" true ok1;
  Alcotest.(check int) "below alpha: nothing remote" 0 c1.Engine.remote_invocations;
  let lat_above, ok2 = run_one engine ~entry:"fan-out" ~req:"{\"num\":12}" in
  let c2 = Engine.counters engine in
  Alcotest.(check bool) "above alpha ok" true ok2;
  Alcotest.(check int) "4 overflow invocations went remote" 4 c2.Engine.remote_invocations;
  Alcotest.(check bool) "overflow costs latency" true (lat_above > lat_below)

(* --- Memory: OOM and CM --- *)

let test_oom_kills_and_fails () =
  let wf = Special.fan_out ~callee_mem_mb:40 () in
  let engine = Quilt.fresh_platform ~workflows:[ wf ] () in
  (* Unguarded merge with a callee of 40 MB and a 128 MB limit: fan-out of
     12 needs 480 MB -> the container dies. *)
  Engine.deploy engine
    {
      Engine.service = "fan-out";
      vcpus = 4.0;
      mem_limit_mb = 128.0;
      base_mem_mb = 10.0;
      image_mb = 30.0;
      max_scale = 2;
      eager_http = false;
      mode =
        Engine.Merged
          { members = [ "fan-out"; "fan-out-worker" ]; guard = (fun ~caller:_ ~callee:_ -> None) };
    };
  let _, ok = run_one engine ~entry:"fan-out" ~req:"{\"num\":12}" in
  let c = Engine.counters engine in
  Alcotest.(check bool) "request failed" false ok;
  Alcotest.(check bool) "container was killed" true (c.Engine.oom_kills >= 1);
  (* A small fan-out still works afterwards (fresh container). *)
  let _, ok2 = run_one engine ~entry:"fan-out" ~req:"{\"num\":2}" in
  Alcotest.(check bool) "recovered" true ok2

let test_guard_prevents_oom () =
  let wf = Special.fan_out ~callee_mem_mb:40 () in
  let engine = Quilt.fresh_platform ~workflows:[ wf ] () in
  Engine.deploy engine
    {
      Engine.service = "fan-out";
      vcpus = 4.0;
      mem_limit_mb = 128.0;
      base_mem_mb = 10.0;
      image_mb = 30.0;
      max_scale = 4;
      eager_http = false;
      mode =
        Engine.Merged
          { members = [ "fan-out"; "fan-out-worker" ]; guard = (fun ~caller:_ ~callee:_ -> Some 2) };
    };
  let _, ok = run_one engine ~entry:"fan-out" ~req:"{\"num\":12}" in
  let c = Engine.counters engine in
  Alcotest.(check bool) "request succeeded" true ok;
  Alcotest.(check int) "no OOM" 0 c.Engine.oom_kills

let test_cm_mode_runs () =
  let wfs = Deathstar.social_network ~async:false () in
  let compose = List.find (fun w -> w.Workflow.wf_name = "compose-post") wfs in
  let engine = Quilt.fresh_platform ~workflows:wfs () in
  Deploy.deploy_cm engine cfg compose;
  let req = "{\"data\":\"c1\"}" in
  let _ = run_one engine ~entry:"compose-post" ~req in
  let warm, ok = run_one engine ~entry:"compose-post" ~req in
  Alcotest.(check bool) "cm ok" true ok;
  (* CM keeps everything in one container: no fn->fn remote invocations. *)
  let c = Engine.counters engine in
  Alcotest.(check int) "nothing remote" 0 c.Engine.remote_invocations;
  Alcotest.(check bool) "cm latency positive" true (warm > 0.0)

(* --- Scaling and load --- *)

let test_max_scale_respected () =
  let engine = fresh () in
  let r =
    Loadgen.run_open_loop engine ~entry:"noop" ~gen_req:noop_wf.Workflow.gen_req ~rate_rps:2000.0
      ~duration_us:3_000_000.0 ()
  in
  ignore r;
  Alcotest.(check bool) "pool bounded by max scale" true (Engine.peak_pool_size engine "noop" <= cfg.Config.max_scale)

let test_fission_latency_quirk () =
  (* Median latency at a very low rate exceeds the median at a moderate
     rate, because idle containers must re-specialize (§7.3.2/§7.5.1). *)
  let lat_at rate =
    let engine = fresh () in
    let r =
      Loadgen.run_open_loop engine ~entry:"noop" ~gen_req:noop_wf.Workflow.gen_req ~rate_rps:rate
        ~duration_us:20_000_000.0 ()
    in
    Loadgen.median_ms r
  in
  let low = lat_at 1.0 in
  let moderate = lat_at 200.0 in
  Alcotest.(check bool)
    (Printf.sprintf "median drops as load rises (%.2fms @1rps vs %.2fms @200rps)" low moderate)
    true (low > moderate)

let test_profiling_overhead_small () =
  let median ~profiled =
    let engine = fresh () in
    Engine.set_profiling engine profiled;
    let r =
      Loadgen.run_open_loop engine ~entry:"noop" ~gen_req:noop_wf.Workflow.gen_req ~rate_rps:300.0
        ~duration_us:10_000_000.0 ()
    in
    Loadgen.median_ms r
  in
  let off = median ~profiled:false in
  let on = median ~profiled:true in
  Alcotest.(check bool) "profiling costs something" true (on > off);
  Alcotest.(check bool) "but under 20%" true ((on -. off) /. off < 0.2)

let test_tracing_spans_recorded () =
  let wfs = Deathstar.social_network ~async:false () in
  let engine = Quilt.fresh_platform ~workflows:wfs () in
  Engine.set_profiling engine true;
  let _ = run_one engine ~entry:"compose-post" ~req:"{\"data\":\"t\"}" in
  let store = Engine.tracing engine in
  (* 1 client span + 10 internal edges (the 11-function workflow is a
     tree). *)
  Alcotest.(check int) "spans" (1 + List.length (List.find (fun w -> w.Workflow.wf_name = "compose-post") wfs).Workflow.code_edges) (Trace.span_count store);
  let spans = Trace.spans store () in
  let client = List.filter (fun (s : Trace.span) -> s.Trace.caller = None) spans in
  Alcotest.(check int) "1 client span" 1 (List.length client)

let test_throughput_saturates () =
  let wfs = Deathstar.social_network ~async:false () in
  let compose = List.find (fun w -> w.Workflow.wf_name = "compose-post") wfs in
  let tput rate =
    let engine = Quilt.fresh_platform ~workflows:wfs () in
    let r =
      Loadgen.run_open_loop engine ~entry:"compose-post" ~gen_req:compose.Workflow.gen_req
        ~rate_rps:rate ~duration_us:10_000_000.0 ()
    in
    r.Loadgen.throughput_rps
  in
  let t_low = tput 20.0 in
  let t_sat = tput 5000.0 in
  Alcotest.(check bool) "low load served fully" true (t_low > 15.0);
  Alcotest.(check bool) "saturation is finite" true (t_sat < 5000.0)

(* --- Opt-in bit end to end --- *)

let test_optimize_respects_pinned_function () =
  let wfs = Deathstar.social_network ~async:false () in
  let compose = List.find (fun w -> w.Workflow.wf_name = "compose-post") wfs in
  (* Mark text-service sensitive: the developer withdrew the opt-in. *)
  let functions =
    List.map
      (fun (f : Quilt_lang.Ast.fn) ->
        if f.Quilt_lang.Ast.fn_name = "text-service" then { f with Quilt_lang.Ast.mergeable = false }
        else f)
      compose.Workflow.functions
  in
  let compose = { compose with Workflow.functions } in
  let t = solution_for compose in
  (* text-service appears in no merged deployment. *)
  List.iter
    (fun (d : Deploy.merged_deployment) ->
      Alcotest.(check bool) "text-service not merged" false
        (List.mem "text-service" d.Deploy.members))
    t.Quilt.deployments;
  (* And the workflow still runs correctly after applying the plan. *)
  let engine = Quilt.fresh_platform ~workflows:[ compose ] () in
  Quilt.apply engine t;
  let _, ok = run_one engine ~entry:"compose-post" ~req:"{\"data\":\"pin\"}" in
  Alcotest.(check bool) "still works" true ok;
  let c = Engine.counters engine in
  Alcotest.(check bool) "text-service reached remotely" true (c.Engine.remote_invocations > 0)

(* --- Reconsideration (§1.1 monitoring) --- *)

let test_reconsider_keeps_stable_workload () =
  let wfs = Deathstar.social_network ~async:false () in
  let compose = List.find (fun w -> w.Workflow.wf_name = "compose-post") wfs in
  let t = solution_for compose in
  match Quilt.reconsider cfg ~workflows:[ compose ] t with
  | Quilt.Keep report ->
      Alcotest.(check string) "empty drift report" "no drift" (Quilt_dag.Drift.describe report)
  | Quilt.Remerge _ -> Alcotest.fail "stable workload should not trigger a re-merge"
  | Quilt.Rollback_advised e -> Alcotest.fail ("unexpected rollback: " ^ e)

let test_reconsider_detects_update () =
  let wfs = Deathstar.social_network ~async:false () in
  let compose = List.find (fun w -> w.Workflow.wf_name = "compose-post") wfs in
  let t = solution_for compose in
  (* The developer withdraws text-service's opt-in: reconsideration must
     produce a new plan that leaves it out. *)
  let functions =
    List.map
      (fun (f : Quilt_lang.Ast.fn) ->
        if f.Quilt_lang.Ast.fn_name = "text-service" then { f with Quilt_lang.Ast.mergeable = false }
        else f)
      compose.Workflow.functions
  in
  let updated = { compose with Workflow.functions } in
  match Quilt.reconsider cfg ~workflows:[ updated ] t with
  | Quilt.Remerge (t', report) ->
      List.iter
        (fun (d : Deploy.merged_deployment) ->
          Alcotest.(check bool) "new plan excludes text-service" false
            (List.mem "text-service" d.Deploy.members))
        t'.Quilt.deployments;
      (* The diagnostics name the withdrawn function, not just "drifted". *)
      Alcotest.(check bool) "opt-in flip attributed to text-service" true
        (List.mem "text-service" report.Quilt_dag.Drift.optin_flips)
  | Quilt.Keep _ -> Alcotest.fail "opt-in withdrawal must trigger re-merge"
  | Quilt.Rollback_advised e -> Alcotest.fail ("unexpected rollback: " ^ e)

let suite =
  [
    ( "platform.calltree",
      [
        Alcotest.test_case "structure" `Quick test_calltree_structure;
        Alcotest.test_case "async futures" `Quick test_calltree_async_has_futures;
      ] );
    ( "platform.engine",
      [
        Alcotest.test_case "latency anatomy" `Quick test_single_request_latency_anatomy;
        Alcotest.test_case "overhead scales with depth" `Quick test_remote_overhead_scales_with_depth;
        Alcotest.test_case "guard overflow" `Quick test_engine_guard_overflow;
        Alcotest.test_case "oom kills and fails" `Quick test_oom_kills_and_fails;
        Alcotest.test_case "guard prevents oom" `Quick test_guard_prevents_oom;
        Alcotest.test_case "cm mode" `Quick test_cm_mode_runs;
        Alcotest.test_case "max scale" `Slow test_max_scale_respected;
        Alcotest.test_case "fission latency quirk" `Slow test_fission_latency_quirk;
        Alcotest.test_case "throughput saturates" `Slow test_throughput_saturates;
      ] );
    ( "platform.tracing",
      [
        Alcotest.test_case "profiling overhead small" `Slow test_profiling_overhead_small;
        Alcotest.test_case "spans recorded" `Quick test_tracing_spans_recorded;
        Alcotest.test_case "profile builds graph" `Slow test_profile_builds_expected_graph;
      ] );
    ( "core.quilt",
      [
        Alcotest.test_case "optimize merges workflow" `Slow test_optimize_merges_whole_workflow;
        Alcotest.test_case "merged beats baseline" `Slow test_merged_latency_beats_baseline;
        Alcotest.test_case "rollback" `Slow test_rollback_restores_baseline;
        Alcotest.test_case "pinned function stays separate" `Slow test_optimize_respects_pinned_function;
        Alcotest.test_case "reconsider keeps stable workload" `Slow test_reconsider_keeps_stable_workload;
        Alcotest.test_case "reconsider detects update" `Slow test_reconsider_detects_update;
      ] );
  ]
