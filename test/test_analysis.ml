(* Tests for the static-analysis framework (lib/ir/analysis.ml) and its
   three consumers: the strict verifier tier (one minimal ill-formed
   module per diagnostic code), the analysis-driven optimization passes,
   and the merge-interference analyzer. *)

open Quilt_ir

let parse = Parser.parse_module

let func m name =
  match Ir.find_func m name with
  | Some f -> f
  | None -> Alcotest.failf "function @%s missing" name

let diag_codes ?(strict = true) src =
  List.map (fun d -> d.Verify.code) (Verify.run ~strict (parse src))

let check_code ~code src =
  let got = diag_codes src in
  Alcotest.(check bool)
    (Printf.sprintf "%s reported (got: %s)" code (String.concat "," got))
    true (List.mem code got)

(* --- CFG and dominators --- *)

let loop_func_text =
  {|
module "loopy"
define i64 @f(i64 %n) {
entry:
  br label %head
head:
  %i = phi i64 [ 0, %entry ], [ %i2, %body ]
  %c = icmp slt i64 %i, %n
  cbr i1 %c, label %body, label %exit
body:
  %i2 = add i64 %i, 1
  br label %head
exit:
  ret i64 %i
}
|}

let test_dominators () =
  let cfg = Analysis.cfg_of_func (func (parse loop_func_text) "f") in
  let idx l = Option.get (Analysis.block_index cfg l) in
  let idom = Analysis.dominators cfg in
  let entry, head, body, exit_ = (idx "entry", idx "head", idx "body", idx "exit") in
  Alcotest.(check int) "idom entry = entry" entry idom.(entry);
  Alcotest.(check int) "idom head = entry" entry idom.(head);
  Alcotest.(check int) "idom body = head" head idom.(body);
  Alcotest.(check int) "idom exit = head" head idom.(exit_);
  Alcotest.(check bool) "head dominates body" true (Analysis.dominates ~idom head body);
  Alcotest.(check bool) "head dominates exit" true (Analysis.dominates ~idom head exit_);
  Alcotest.(check bool) "body does not dominate exit" false (Analysis.dominates ~idom body exit_);
  Alcotest.(check bool) "dominates is reflexive" true (Analysis.dominates ~idom body body)

let test_cfg_edges () =
  let cfg = Analysis.cfg_of_func (func (parse loop_func_text) "f") in
  let idx l = Option.get (Analysis.block_index cfg l) in
  Alcotest.(check (list int)) "head preds" [ idx "entry"; idx "body" ]
    (List.sort compare cfg.Analysis.preds.(idx "head"));
  Alcotest.(check (list int)) "head succs" [ idx "body"; idx "exit" ]
    (List.sort compare cfg.Analysis.succs.(idx "head"));
  Alcotest.(check bool) "all reachable" true (Array.for_all Fun.id cfg.Analysis.reachable)

let diamond_text =
  {|
module "diamond"
define i64 @f(i64 %x) {
entry:
  %s = add i64 %x, 1
  %c = icmp sgt i64 %s, 10
  cbr i1 %c, label %big, label %small
big:
  %m = mul i64 %s, 2
  br label %done
small:
  %m2 = mul i64 %s, 3
  br label %done
done:
  %r = phi i64 [ %m, %big ], [ %m2, %small ]
  ret i64 %r
}
|}

let test_liveness () =
  let cfg = Analysis.cfg_of_func (func (parse diamond_text) "f") in
  let idx l = Option.get (Analysis.block_index cfg l) in
  let lv = Analysis.liveness cfg in
  let mem name set = Analysis.SS.mem name set in
  (* %s is defined in entry and used in both arms. *)
  Alcotest.(check bool) "s live out of entry" true (mem "s" lv.Analysis.live_out.(idx "entry"));
  Alcotest.(check bool) "s live into big" true (mem "s" lv.Analysis.live_in.(idx "big"));
  (* Phi sources are uses at the end of the matching predecessor, not in
     the phi's own block. *)
  Alcotest.(check bool) "m live out of big" true (mem "m" lv.Analysis.live_out.(idx "big"));
  Alcotest.(check bool) "m not live into done" false (mem "m" lv.Analysis.live_in.(idx "done"));
  Alcotest.(check bool) "m2 not live out of big" false (mem "m2" lv.Analysis.live_out.(idx "big"));
  (* %x is consumed by the first instruction of entry. *)
  Alcotest.(check bool) "x dead past entry" false (mem "x" lv.Analysis.live_out.(idx "entry"))

let test_write_only_slots () =
  let src =
    {|
module "slots"
define i64 @f() {
entry:
  %dead = alloca i64 8
  %live = alloca i64 8
  store i64 1, ptr %dead
  store i64 2, ptr %live
  %v = load i64, ptr %live
  ret i64 %v
}
|}
  in
  let slots = Analysis.write_only_slots (func (parse src) "f") in
  Alcotest.(check bool) "never-loaded slot found" true (Analysis.SS.mem "dead" slots);
  Alcotest.(check bool) "loaded slot kept" false (Analysis.SS.mem "live" slots)

(* --- Strict verifier: one minimal ill-formed module per code --- *)

let test_s001_dominance () =
  check_code ~code:"S001"
    {|
module "s001"
define i64 @f(i1 %c) {
entry:
  cbr i1 %c, label %a, label %b
a:
  %x = add i64 1, 2
  br label %b
b:
  %y = add i64 %x, 1
  ret i64 %y
}
|}

let test_s002_binop_types () =
  check_code ~code:"S002"
    {|
module "s002"
define i64 @f(ptr %p) {
entry:
  %x = add i64 %p, 1
  ret i64 %x
}
|}

let test_s003_icmp_types () =
  check_code ~code:"S003"
    {|
module "s003"
define i1 @f(ptr %p) {
entry:
  %c = icmp sgt i64 %p, 0
  ret i1 %c
}
|}

let test_s004_select_cond () =
  check_code ~code:"S004"
    {|
module "s004"
define i64 @f(i64 %n) {
entry:
  %x = select i1 %n, i64 1, 2
  ret i64 %x
}
|}

let test_s005_phi_incoming_type () =
  check_code ~code:"S005"
    {|
module "s005"
define i64 @f(ptr %p) {
entry:
  br label %b
b:
  %x = phi i64 [ %p, %entry ]
  ret i64 %x
}
|}

let test_s006_memory_types () =
  check_code ~code:"S006"
    {|
module "s006"
define i64 @f(i64 %n) {
entry:
  %v = load i64, ptr %n
  ret i64 %v
}
|}

let test_s007_phi_pred_mismatch () =
  check_code ~code:"S007"
    {|
module "s007"
define i64 @f(i1 %c) {
entry:
  cbr i1 %c, label %a, label %b
a:
  br label %done
b:
  br label %done
done:
  %r = phi i64 [ 1, %a ]
  ret i64 %r
}
|}

let test_s008_entry_phi () =
  check_code ~code:"S008"
    {|
module "s008"
define i64 @f() {
entry:
  %x = phi i64 [ 0, %entry ]
  ret i64 %x
}
|}

let test_s009_operand_types () =
  check_code ~code:"S009"
    {|
module "s009"
define i64 @f(i64 %n) {
entry:
  cbr i1 %n, label %a, label %b
a:
  ret i64 1
b:
  ret i64 2
}
|}

let test_w001_unreachable_block () =
  let src =
    {|
module "w001"
define i64 @f() {
entry:
  ret i64 1
dead:
  ret i64 2
}
|}
  in
  let diags = Verify.run ~strict:true (parse src) in
  let w = List.find_opt (fun d -> d.Verify.code = "W001") diags in
  (match w with
  | Some d -> Alcotest.(check bool) "W001 is a warning" true (d.Verify.severity = Verify.Warning)
  | None -> Alcotest.fail "W001 not reported");
  (* Warnings never appear without ~strict. *)
  Alcotest.(check (list string)) "base tier silent" []
    (List.map (fun d -> d.Verify.code) (Verify.run (parse src)))

let test_w002_dead_store () =
  let src =
    {|
module "w002"
define i64 @f() {
entry:
  %p = alloca i64 8
  store i64 1, ptr %p
  ret i64 0
}
|}
  in
  let diags = Verify.run ~strict:true (parse src) in
  match List.find_opt (fun d -> d.Verify.code = "W002") diags with
  | Some d -> Alcotest.(check bool) "W002 is a warning" true (d.Verify.severity = Verify.Warning)
  | None -> Alcotest.fail "W002 not reported"

let test_v010_ret_mismatch () =
  check_code ~code:"V010"
    {|
module "v010a"
define void @f() {
entry:
  ret i64 1
}
|};
  check_code ~code:"V010"
    {|
module "v010b"
define i64 @f() {
entry:
  ret void
}
|}

let test_v013_void_call_dst () =
  check_code ~code:"V013"
    {|
module "v013"
declare void @g()
define i64 @f() {
entry:
  %x = call void @g()
  ret i64 0
}
|}

let test_diagnostics_carry_block () =
  let diags =
    Verify.run ~strict:true
      (parse
         {|
module "loc"
define i64 @f(i1 %c) {
entry:
  cbr i1 %c, label %a, label %b
a:
  %x = add i64 1, 2
  br label %b
b:
  %y = add i64 %x, 1
  ret i64 %y
}
|})
  in
  match List.find_opt (fun d -> d.Verify.code = "S001") diags with
  | Some d ->
      Alcotest.(check string) "function" "f" d.Verify.where;
      Alcotest.(check (option string)) "block" (Some "b") d.Verify.block
  | None -> Alcotest.fail "S001 not reported"

(* --- Merge-interference analyzer --- *)

let interference_codes src = List.map (fun d -> d.Verify.code) (Verify.interference (parse src))

let test_m001_symbol_collision () =
  let codes =
    interference_codes
      {|
module "m001"
@clash = global i64 0
define i64 @clash() {
entry:
  ret i64 0
}
|}
  in
  Alcotest.(check bool) "M001 reported" true (List.mem "M001" codes)

let test_m002_shared_global_writes () =
  let src =
    {|
module "m002"
@state = global i64 0
define i64 @a__handler(ptr %req) {
entry:
  store i64 1, ptr @state
  ret i64 0
}
define i64 @b__local(ptr %req) {
entry:
  store i64 2, ptr @state
  ret i64 0
}
|}
  in
  let diags = Verify.interference (parse src) in
  match List.find_opt (fun d -> d.Verify.code = "M002") diags with
  | Some d -> Alcotest.(check bool) "M002 is a warning" true (d.Verify.severity = Verify.Warning)
  | None -> Alcotest.fail "M002 not reported"

let test_m003_abi_mismatch () =
  let codes =
    interference_codes
      {|
module "m003"
define i64 @callee(i64 %x) lang "rust" {
entry:
  ret i64 %x
}
define i64 @caller(ptr %p) lang "c" {
entry:
  %r = call i64 @callee(ptr %p)
  ret i64 %r
}
|}
  in
  Alcotest.(check bool) "M003 reported" true (List.mem "M003" codes)

(* --- Optimization passes (unit; fuzz pins them end to end) --- *)

let test_sccp_folds_branch () =
  let m =
    parse
      {|
module "sccp"
define i64 @f() {
entry:
  %a = add i64 2, 3
  %c = icmp sgt i64 %a, 4
  cbr i1 %c, label %t, label %e
t:
  ret i64 %a
e:
  ret i64 0
}
|}
  in
  let f = func (Pass_sccp.run m) "f" in
  Alcotest.(check int) "dead arm dropped" 2 (List.length f.Ir.blocks);
  let printed = Pp.to_string { m with Ir.funcs = [ f ] } in
  Alcotest.(check bool) "constant propagated into ret" true
    (let has_sub s sub =
       let n = String.length sub in
       let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     has_sub printed "ret i64 5")

let test_livedce_drops_phi_cycle () =
  let m =
    parse
      {|
module "livedce"
define i64 @f(i64 %n) {
entry:
  br label %h
h:
  %i = phi i64 [ 0, %entry ], [ %i2, %b ]
  %dead = phi i64 [ 1, %entry ], [ %d2, %b ]
  %c = icmp slt i64 %i, %n
  cbr i1 %c, label %b, label %x
b:
  %d2 = mul i64 %dead, 3
  %i2 = add i64 %i, 1
  br label %h
x:
  ret i64 %i
}
|}
  in
  let before = Ir.instr_count m in
  let m' = Pass_livedce.run m in
  Alcotest.(check int) "dead phi cycle retired" (before - 2) (Ir.instr_count m');
  Alcotest.(check (list string)) "still strict-clean" []
    (List.map (fun d -> d.Verify.code)
       (List.filter (fun d -> d.Verify.severity = Verify.Error) (Verify.run ~strict:true m')))

let test_jumpthread_coalesces () =
  let m =
    parse
      {|
module "jt"
define i64 @f() {
entry:
  br label %a
a:
  %x = add i64 1, 2
  br label %b
b:
  ret i64 %x
}
|}
  in
  let f = func (Pass_jumpthread.run m) "f" in
  Alcotest.(check int) "straight-line chain coalesced" 1 (List.length f.Ir.blocks)

let test_shiminline_flattens () =
  let m =
    parse
      {|
module "inline"
define i64 @c2callee_inner(i64 %x) {
entry:
  %y = add i64 %x, 1
  ret i64 %y
}
define i64 @caller2c_c_outer(i64 %x) {
entry:
  %y = call i64 @c2callee_inner(i64 %x)
  ret i64 %y
}
define i64 @main(i64 %n) {
entry:
  %r = call i64 @caller2c_c_outer(i64 %n)
  %r2 = call i64 @caller2c_c_outer(i64 %r)
  ret i64 %r2
}
|}
  in
  let m' = Pass_shiminline.run m in
  let calls_in f =
    List.concat_map
      (fun (b : Ir.block) ->
        List.filter_map
          (function Ir.Call { callee; _ } -> Some callee | _ -> None)
          b.Ir.instrs)
      f.Ir.blocks
  in
  Alcotest.(check (list string)) "all shim calls flattened" [] (calls_in (func m' "main"));
  Alcotest.(check (list string)) "no errors after inlining" []
    (List.map (fun d -> d.Verify.code)
       (List.filter (fun d -> d.Verify.severity = Verify.Error) (Verify.run ~strict:true m')));
  (* The exact arithmetic survives: two increments chained onto %n. *)
  let f = func m' "main" in
  Alcotest.(check int) "two spliced adds" 2 (List.length (List.hd f.Ir.blocks).Ir.instrs)

let test_dce_fixed_point () =
  let m =
    parse
      {|
module "dce"
@gused = global i64 0
@gdead = global i64 0
define i64 @main() {
entry:
  %r = call i64 @a()
  ret i64 %r
}
define i64 @a() {
entry:
  %r = call i64 @b()
  ret i64 %r
}
define i64 @b() {
entry:
  %v = load i64, ptr @gused
  ret i64 %v
}
define i64 @cyc1() {
entry:
  %r = call i64 @cyc2()
  ret i64 %r
}
define i64 @cyc2() {
entry:
  %r = call i64 @cyc1()
  ret i64 %r
}
|}
  in
  let m' = Pass_dce.run ~roots:[ "main" ] m in
  let names = List.sort compare (List.map (fun (f : Ir.func) -> f.Ir.fname) m'.Ir.funcs) in
  (* Transitive liveness is a fixed point: the whole root chain survives,
     the mutually-recursive island (live only through itself) does not. *)
  Alcotest.(check (list string)) "root chain kept, dead cycle dropped" [ "a"; "b"; "main" ] names;
  Alcotest.(check (list string)) "dead global dropped" [ "gused" ]
    (List.map (fun (g : Ir.global) -> g.Ir.gname) m'.Ir.globals)

let suite =
  [
    ( "analysis.cfg",
      [
        Alcotest.test_case "dominator tree (CHK)" `Quick test_dominators;
        Alcotest.test_case "pred/succ/reachability" `Quick test_cfg_edges;
        Alcotest.test_case "backward liveness with phi edges" `Quick test_liveness;
        Alcotest.test_case "write-only slots" `Quick test_write_only_slots;
      ] );
    ( "analysis.strict",
      [
        Alcotest.test_case "S001 dominance" `Quick test_s001_dominance;
        Alcotest.test_case "S002 binop typing" `Quick test_s002_binop_types;
        Alcotest.test_case "S003 icmp typing" `Quick test_s003_icmp_types;
        Alcotest.test_case "S004 select condition" `Quick test_s004_select_cond;
        Alcotest.test_case "S005 phi incoming typing" `Quick test_s005_phi_incoming_type;
        Alcotest.test_case "S006 memory typing" `Quick test_s006_memory_types;
        Alcotest.test_case "S007 phi/CFG agreement" `Quick test_s007_phi_pred_mismatch;
        Alcotest.test_case "S008 entry-block phi" `Quick test_s008_entry_phi;
        Alcotest.test_case "S009 terminator operand typing" `Quick test_s009_operand_types;
        Alcotest.test_case "W001 unreachable block" `Quick test_w001_unreachable_block;
        Alcotest.test_case "W002 dead store" `Quick test_w002_dead_store;
        Alcotest.test_case "V010 ret/return-type disagreement" `Quick test_v010_ret_mismatch;
        Alcotest.test_case "V013 void call binds a value" `Quick test_v013_void_call_dst;
        Alcotest.test_case "diagnostics carry fn+block" `Quick test_diagnostics_carry_block;
      ] );
    ( "analysis.interference",
      [
        Alcotest.test_case "M001 symbol collision" `Quick test_m001_symbol_collision;
        Alcotest.test_case "M002 cross-member global writes" `Quick test_m002_shared_global_writes;
        Alcotest.test_case "M003 ABI type mismatch" `Quick test_m003_abi_mismatch;
      ] );
    ( "analysis.passes",
      [
        Alcotest.test_case "sccp folds constant branches" `Quick test_sccp_folds_branch;
        Alcotest.test_case "livedce retires dead phi cycles" `Quick test_livedce_drops_phi_cycle;
        Alcotest.test_case "jumpthread coalesces chains" `Quick test_jumpthread_coalesces;
        Alcotest.test_case "shim inlining flattens wrappers" `Quick test_shiminline_flattens;
        Alcotest.test_case "symbol DCE is a fixed point" `Quick test_dce_fixed_point;
      ] );
  ]
