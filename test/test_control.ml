(* The online control plane: trace eviction vs windowed graphs, drift
   detection, the hysteresis/cooldown detector, canary judgement, and
   end-to-end smoke runs of the adaptive scenarios. *)

module Engine = Quilt_platform.Engine
module Loadgen = Quilt_platform.Loadgen
module Trace = Quilt_tracing.Trace
module Builder = Quilt_tracing.Builder
module Callgraph = Quilt_dag.Callgraph
module Drift = Quilt_dag.Drift
module Gen = Quilt_dag.Gen
module Rng = Quilt_util.Rng
module Workflow = Quilt_apps.Workflow
module Special = Quilt_apps.Special
module Quilt = Quilt_core.Quilt
module Detector = Quilt_control.Detector
module Canary = Quilt_control.Canary
module Controller = Quilt_control.Controller
module Scenario = Quilt_control.Scenario

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

(* ---- eviction vs windowed call graphs ---- *)

(* A graph summary that ignores node-id numbering (eviction must not change
   what the builder sees, but ids depend on discovery order). *)
let graph_summary (g : Callgraph.t) =
  let name i = (Callgraph.node g i).Callgraph.name in
  let nodes =
    Array.to_list g.Callgraph.nodes
    |> List.map (fun (n : Callgraph.node) -> (n.Callgraph.name, n.Callgraph.cpu, n.Callgraph.mem_mb))
    |> List.sort compare
  in
  let edges =
    List.map
      (fun (e : Callgraph.edge) -> (name e.Callgraph.src, name e.Callgraph.dst, e.Callgraph.weight))
      g.Callgraph.edges
    |> List.sort compare
  in
  (g.Callgraph.invocations, nodes, edges)

let test_evict_preserves_windowed_graph () =
  let wf = Special.routed () in
  let engine = Quilt.fresh_platform ~seed:7 ~workflows:[ wf ] () in
  Engine.set_profiling engine true;
  let t0 = Engine.now engine in
  let _ =
    Loadgen.run_open_loop engine ~entry:wf.Workflow.entry ~gen_req:wf.Workflow.gen_req
      ~rate_rps:25.0 ~duration_us:12_000_000.0 ~warmup_us:0.0 ()
  in
  let st = Engine.tracing engine in
  (* The drain grace runs the clock past the traffic, so anchor the window
     inside the traffic interval: its second half. *)
  let window_start = t0 +. 6_000_000.0 in
  let build () =
    match Builder.build st ~entry:wf.Workflow.entry ~window_start () with
    | Ok g -> graph_summary (Builder.known_calls ~code_edges:wf.Workflow.code_edges g)
    | Error e -> Alcotest.fail e
  in
  let before = build () in
  let spans_before = Trace.span_count st in
  Trace.evict_before st window_start;
  let after = build () in
  checkb "eviction dropped spans" true (Trace.span_count st < spans_before);
  let n_b, nodes_b, edges_b = before and n_a, nodes_a, edges_a = after in
  check Alcotest.int "same N" n_b n_a;
  checkb "same nodes" true (nodes_b = nodes_a);
  checkb "same edges" true (edges_b = edges_a)

(* ---- drift detection ---- *)

let mk_graph ?(invocations = 100) ~nodes ~edges () =
  let node_arr =
    Array.of_list
      (List.mapi
         (fun id (name, cpu, mem) ->
           { Callgraph.id; name; mem_mb = mem; cpu; mergeable = true })
         nodes)
  in
  let edges =
    List.map
      (fun (src, dst, weight, kind) -> { Callgraph.src; dst; weight; kind })
      edges
  in
  Callgraph.make ~nodes:node_arr ~edges ~root:0 ~invocations

let chain ~wa ~wb =
  mk_graph
    ~nodes:[ ("e", 2.0, 8.0); ("a", 3.0, 16.0); ("b", 3.0, 16.0) ]
    ~edges:[ (0, 1, wa, Callgraph.Sync); (0, 2, wb, Callgraph.Sync) ]
    ()

let test_drift_rate_catches_mix_flip () =
  (* 90/10 -> 10/90: α = ⌈w/N⌉ = 1 on every edge in both graphs, so only
     the w/N rate comparison can see the flip. *)
  let old_g = chain ~wa:90 ~wb:10 and new_g = chain ~wa:10 ~wb:90 in
  let r = Drift.detect old_g new_g in
  checkb "drifted" true (Drift.drifted r);
  check Alcotest.int "no alpha shifts" 0 (List.length r.Drift.alpha_shifts);
  check Alcotest.int "two rate shifts" 2 (List.length r.Drift.rate_shifts);
  checkb "no topology change" false (Drift.topology_changed r)

let test_drift_identical_is_quiet () =
  let g = chain ~wa:60 ~wb:40 in
  let r = Drift.detect g g in
  checkb "no drift" false (Drift.drifted r);
  check Alcotest.string "describe" "no drift" (Drift.describe r)

let test_drift_topology_and_resources () =
  let old_g = chain ~wa:50 ~wb:50 in
  let new_g =
    mk_graph
      ~nodes:[ ("e", 2.0, 8.0); ("a", 9.0, 16.0) ]
      ~edges:[ (0, 1, 50, Callgraph.Sync) ]
      ()
  in
  let r = Drift.detect old_g new_g in
  checkb "vertex removal seen" true (List.mem "b" r.Drift.removed_nodes);
  checkb "edge removal seen" true (List.mem ("e", "b") r.Drift.removed_edges);
  checkb "cpu shift seen" true
    (List.exists (fun (s : Drift.resource_shift) -> s.Drift.fn = "a") r.Drift.resource_shifts)

let test_drift_threshold_gates_rates () =
  let old_g = chain ~wa:50 ~wb:50 and new_g = chain ~wa:55 ~wb:45 in
  let r = Drift.detect ~threshold:0.3 old_g new_g in
  checkb "10% shift below 30% threshold" false (Drift.drifted r);
  let r = Drift.detect ~threshold:0.05 old_g new_g in
  checkb "10% shift above 5% threshold" true (Drift.drifted r)

let qcheck_self_drift =
  QCheck.Test.make ~name:"control: detect g g never drifts" ~count:80
    (QCheck.int_range 1 1_000_000) (fun seed ->
      let rng = Rng.create seed in
      let g, _ = Gen.random_rdag rng ~n:(2 + Rng.int rng 18) ~heavy_fraction:0.2 () in
      not (Drift.drifted (Drift.detect g g)))

(* ---- hysteresis / cooldown detector ---- *)

let drifting_report =
  Drift.detect (chain ~wa:90 ~wb:10) (chain ~wa:10 ~wb:90)

let quiet_report = Drift.detect (chain ~wa:50 ~wb:50) (chain ~wa:50 ~wb:50)

let test_detector_hysteresis_and_cooldown () =
  let d = Detector.create ~hysteresis:2 ~cooldown_us:10.0 () in
  (match Detector.observe d ~now:1.0 drifting_report with
  | Detector.Suspect 1 -> ()
  | _ -> Alcotest.fail "expected Suspect 1");
  (match Detector.observe d ~now:2.0 quiet_report with
  | Detector.No_drift -> ()
  | _ -> Alcotest.fail "quiet window must reset the streak");
  (match Detector.observe d ~now:3.0 drifting_report with
  | Detector.Suspect 1 -> ()
  | _ -> Alcotest.fail "streak restarts at 1");
  (match Detector.observe d ~now:4.0 drifting_report with
  | Detector.Trigger -> ()
  | _ -> Alcotest.fail "second consecutive drift must trigger");
  Detector.note_action d ~now:4.0;
  (match Detector.observe d ~now:5.0 drifting_report with
  | Detector.Cooling -> ()
  | _ -> Alcotest.fail "inside cooldown");
  match Detector.observe d ~now:15.0 drifting_report with
  | Detector.Suspect 1 -> ()
  | _ -> Alcotest.fail "cooldown over, streak starts fresh"

let qcheck_detector_quiet =
  QCheck.Test.make ~name:"control: zero-drift reports never Trigger" ~count:60
    (QCheck.int_range 1 1_000_000) (fun seed ->
      let rng = Rng.create seed in
      let d =
        Detector.create ~hysteresis:(1 + Rng.int rng 3)
          ~cooldown_us:(float_of_int (Rng.int rng 20)) ()
      in
      let ok = ref true in
      for i = 1 to 30 do
        let report =
          if Rng.chance rng 0.5 then quiet_report
          else
            (* Drifting windows may Suspect but a quiet one in between must
               keep resetting; only the final judgement matters here: a
               quiet report itself can never Trigger. *)
            drifting_report
        in
        let status = Detector.observe d ~now:(float_of_int i) report in
        if (not (Drift.drifted report)) && status = Detector.Trigger then ok := false;
        if status = Detector.Trigger then Detector.note_action d ~now:(float_of_int i)
      done;
      !ok)

(* ---- canary judgement ---- *)

let stats ~n ~fail_rate ~tail_us = { Canary.n; fail_rate; tail_us }

let test_canary_verdicts () =
  let cfg = Canary.default in
  let pre = stats ~n:200 ~fail_rate:0.0 ~tail_us:20_000.0 in
  (match Canary.judge cfg ~pre ~post:(stats ~n:200 ~fail_rate:0.0 ~tail_us:22_000.0) with
  | Canary.Pass -> ()
  | _ -> Alcotest.fail "mild tail movement must pass");
  (match Canary.judge cfg ~pre ~post:(stats ~n:200 ~fail_rate:0.0 ~tail_us:50_000.0) with
  | Canary.Regress _ -> ()
  | _ -> Alcotest.fail "2.5x tail must regress");
  (* An OOM-looping deployment can show a LOWER tail because only cheap
     requests survive: the failure-rate check must fire first. *)
  (match Canary.judge cfg ~pre ~post:(stats ~n:200 ~fail_rate:0.3 ~tail_us:5_000.0) with
  | Canary.Regress reason ->
      checkb "reason mentions failures" true
        (String.length reason > 0 && String.lowercase_ascii reason <> "")
  | _ -> Alcotest.fail "failure spike must regress");
  match Canary.judge cfg ~pre ~post:(stats ~n:3 ~fail_rate:0.0 ~tail_us:1_000.0) with
  | Canary.Inconclusive _ -> ()
  | _ -> Alcotest.fail "too few samples must be inconclusive"

let test_canary_stats_of () =
  let cfg = Canary.default in
  let samples =
    [ (10_000.0, true); (20_000.0, true); (30_000.0, true); (40_000.0, false) ]
  in
  let s = Canary.stats_of cfg samples in
  check Alcotest.int "n" 4 s.Canary.n;
  check (Alcotest.float 1e-9) "fail rate" 0.25 s.Canary.fail_rate;
  (* Tail is computed over successes only (the 40 ms sample failed); allow
     the histogram's bucket-midpoint error. *)
  checkb "tail over successes only" true (s.Canary.tail_us <= 30_000.0 *. 1.02)

(* ---- end-to-end smoke scenarios ---- *)

let run_scenario name =
  match Scenario.run ~smoke:true ~with_controller:true name with
  | Ok o -> o
  | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" name e)

let summary_of (o : Scenario.outcome) =
  match o.Scenario.o_summary with
  | Some s -> s
  | None -> Alcotest.fail "controller run must produce a summary"

let test_e2e_steady_keeps () =
  let o = run_scenario "steady" in
  let s = summary_of o in
  check Alcotest.int "no remerges" 0 s.Controller.s_remerges;
  check Alcotest.int "no rollbacks" 0 (s.Controller.s_rollbacks + s.Controller.s_watchdogs);
  checkb "kept at least once" true (s.Controller.s_keeps >= 1);
  checkb "groups unchanged" true (o.Scenario.o_initial_groups = o.Scenario.o_final_groups)

let test_e2e_path_shift_adapts () =
  let o = run_scenario "path-shift" in
  let s = summary_of o in
  checkb "remerged at least once" true (s.Controller.s_remerges >= 1);
  check Alcotest.int "no rollbacks" 0 (s.Controller.s_rollbacks + s.Controller.s_watchdogs);
  checkb "canary passed" true (s.Controller.s_canary_passes >= 1);
  checkb "hot b-chain co-located with the entry" true
    (List.mem
       [ "route-b1"; "route-b2"; "route-split" ]
       o.Scenario.o_final_groups)

let test_e2e_regress_rolls_back () =
  let o = run_scenario "regress" in
  let s = summary_of o in
  checkb "remerged at least once" true (s.Controller.s_remerges >= 1);
  checkb "canary rolled back" true (s.Controller.s_rollbacks >= 1);
  checkb "bad grouping held down" true (s.Controller.s_holds >= 1);
  checkb "ends on the initial (guarded) plan" true
    (o.Scenario.o_initial_groups = o.Scenario.o_final_groups)

let test_e2e_incremental_redecide () =
  (* The warm-start re-decision path must adapt the same scenario the full
     optimizer does, and — since it escalates whenever the incremental
     solver declines or returns a grouping-identical patch — equal seeds
     must give identical outcomes run to run. *)
  let run () =
    match
      Scenario.run ~smoke:true ~incremental_redecide:true ~with_controller:true "path-shift"
    with
    | Ok o -> o
    | Error e -> Alcotest.fail (Printf.sprintf "path-shift (incremental): %s" e)
  in
  let o1 = run () in
  let s1 = summary_of o1 in
  checkb "remerged at least once" true (s1.Controller.s_remerges >= 1);
  check Alcotest.int "no rollbacks" 0 (s1.Controller.s_rollbacks + s1.Controller.s_watchdogs);
  checkb "hot b-chain co-located with the entry" true
    (List.mem [ "route-b1"; "route-b2"; "route-split" ] o1.Scenario.o_final_groups);
  let o2 = run () in
  let s2 = summary_of o2 in
  checkb "equal seeds, identical final groups" true
    (o1.Scenario.o_final_groups = o2.Scenario.o_final_groups);
  check Alcotest.int "equal seeds, identical remerge count" s1.Controller.s_remerges
    s2.Controller.s_remerges

let test_e2e_late_regress_watchdog () =
  let o = run_scenario "late-regress" in
  let s = summary_of o in
  checkb "canary passed the bad plan" true (s.Controller.s_canary_passes >= 1);
  checkb "watchdog rolled back" true (s.Controller.s_watchdogs >= 1);
  checkb "ends on the initial (guarded) plan" true
    (o.Scenario.o_initial_groups = o.Scenario.o_final_groups)

let suite =
  [
    ( "control",
      [
        Alcotest.test_case "evict_before preserves windowed graphs" `Quick
          test_evict_preserves_windowed_graph;
        Alcotest.test_case "drift: rate comparison catches a mix flip" `Quick
          test_drift_rate_catches_mix_flip;
        Alcotest.test_case "drift: identical graphs are quiet" `Quick
          test_drift_identical_is_quiet;
        Alcotest.test_case "drift: topology and resource shifts" `Quick
          test_drift_topology_and_resources;
        Alcotest.test_case "drift: threshold gates rate shifts" `Quick
          test_drift_threshold_gates_rates;
        QCheck_alcotest.to_alcotest qcheck_self_drift;
        Alcotest.test_case "detector: hysteresis and cooldown" `Quick
          test_detector_hysteresis_and_cooldown;
        QCheck_alcotest.to_alcotest qcheck_detector_quiet;
        Alcotest.test_case "canary: verdict priorities" `Quick test_canary_verdicts;
        Alcotest.test_case "canary: stats_of" `Quick test_canary_stats_of;
        Alcotest.test_case "e2e: steady load keeps the plan" `Slow test_e2e_steady_keeps;
        Alcotest.test_case "e2e: path shift triggers an adapting remerge" `Slow
          test_e2e_path_shift_adapts;
        Alcotest.test_case "e2e: canary rolls back a bad remerge" `Slow
          test_e2e_regress_rolls_back;
        Alcotest.test_case "e2e: watchdog catches a late regression" `Slow
          test_e2e_late_regress_watchdog;
        Alcotest.test_case "e2e: incremental re-decision adapts deterministically" `Slow
          test_e2e_incremental_redecide;
      ] );
  ]
