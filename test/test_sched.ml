(* The timer-wheel scheduler must be observationally identical to the seed
   binary heap it replaced: pops come out in nondecreasing (time, seq)
   order, FIFO on equal timestamps, regardless of how events straddle the
   wheel window, the overflow heap, or already-passed bucket indices.
   [Sched.Legacy_heap] IS the seed heap (a faithful copy), so parity
   against it pins the equivalence the engine's determinism relies on. *)

module Sched = Quilt_platform.Sched

let make kind = Sched.create ~kind ~dummy:(-1) ()

let drain_all s =
  let rec go acc =
    match Sched.pop s with
    | None -> List.rev acc
    | Some (t, tag, p) -> go ((t, tag, p) :: acc)
  in
  go []

(* --- units --- *)

let test_fifo_on_equal_times () =
  List.iter
    (fun kind ->
      let s = make kind in
      for i = 0 to 9 do
        Sched.schedule s ~time:42.0 ~tag:i i
      done;
      let popped = drain_all s in
      Alcotest.(check (list int))
        "insertion order on ties"
        [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
        (List.map (fun (_, _, p) -> p) popped);
      List.iter (fun (t, _, _) -> Alcotest.(check (float 0.0)) "time kept" 42.0 t) popped)
    [ Sched.Wheel; Sched.Legacy_heap ]

(* Events far past the wheel window (default ≈1.05 virtual seconds) go to
   the overflow heap and must cascade back in order. *)
let test_overflow_far_future () =
  let s = make Sched.Wheel in
  Sched.schedule s ~time:2_000_000_000.0 ~tag:0 1;
  Sched.schedule s ~time:5.0 ~tag:0 2;
  Sched.schedule s ~time:900_000_000.0 ~tag:0 3;
  Sched.schedule s ~time:1_000_000.0 ~tag:0 4;
  Alcotest.(check (list int))
    "cascade order" [ 2; 4; 3; 1 ]
    (List.map (fun (_, _, p) -> p) (drain_all s))

(* Scheduling behind the cursor (a time at or before an already-popped
   bucket) must not lose the event or break ordering. *)
let test_schedule_behind_cursor () =
  let s = make Sched.Wheel in
  Sched.schedule s ~time:500_000.0 ~tag:0 1;
  Alcotest.(check int) "first pop" 1 (Sched.pop_exn s);
  Sched.schedule s ~time:3.0 ~tag:0 2;
  Sched.schedule s ~time:400_000.0 ~tag:0 3;
  Sched.schedule s ~time:600_000.0 ~tag:0 4;
  Alcotest.(check (list int))
    "past events pop first" [ 2; 3; 4 ]
    (List.map (fun (_, _, p) -> p) (drain_all s))

let test_next_time_and_stats () =
  let s = make Sched.Wheel in
  Alcotest.(check (float 0.0)) "empty: infinity" infinity (Sched.next_time s);
  Sched.schedule s ~time:10.0 ~tag:7 1;
  Sched.schedule s ~time:4.0 ~tag:8 2;
  Sched.schedule s ~time:20.0 ~tag:9 3;
  Alcotest.(check (float 0.0)) "min pending" 4.0 (Sched.next_time s);
  Alcotest.(check int) "length" 3 (Sched.length s);
  let p = Sched.pop_exn s in
  Alcotest.(check int) "min payload" 2 p;
  Alcotest.(check (float 0.0)) "last_time" 4.0 (Sched.last_time s);
  Alcotest.(check int) "last_tag" 8 (Sched.last_tag s);
  ignore (drain_all s);
  Alcotest.(check int) "scheduled_total" 3 (Sched.scheduled_total s);
  Alcotest.(check int) "popped_total" 3 (Sched.popped_total s);
  Alcotest.(check int) "peak_length" 3 (Sched.peak_length s);
  Alcotest.(check bool) "empty again" true (Sched.is_empty s)

(* Thousands of events across many buckets stress the freelist growth and
   the occupancy-bitmap scan. *)
let test_bulk_reverse_order () =
  let s = make Sched.Wheel in
  let n = 5_000 in
  for i = n - 1 downto 0 do
    Sched.schedule s ~time:(float_of_int (i * 37)) ~tag:0 i
  done;
  let popped = List.map (fun (_, _, p) -> p) (drain_all s) in
  Alcotest.(check int) "all popped" n (List.length popped);
  Alcotest.(check (list int)) "sorted by time" (List.init n (fun i -> i)) popped

(* --- qcheck parity harness: wheel vs the seed heap --- *)

(* An op stream drives both schedulers in lockstep; every pop must agree on
   (time, tag, payload).  Times are drawn from a bounded grid so ties are
   frequent, and the range (0 .. 5e6 µs) straddles the wheel window, so
   pushes land in due heap, wheel buckets and overflow alike. *)
let apply_ops ops =
  let w = make Sched.Wheel in
  let l = make Sched.Legacy_heap in
  let counter = ref 0 in
  let ok = ref true in
  List.iter
    (fun op ->
      if op mod 4 = 3 then begin
        (* pop both, compare *)
        (match (Sched.pop w, Sched.pop l) with
        | None, None -> ()
        | Some a, Some b -> if a <> b then ok := false
        | Some _, None | None, Some _ -> ok := false)
      end
      else begin
        let t = float_of_int (op / 4 mod 5_000_000) /. 3.0 in
        incr counter;
        Sched.schedule w ~time:t ~tag:!counter !counter;
        Sched.schedule l ~time:t ~tag:!counter !counter
      end)
    ops;
  !ok && drain_all w = drain_all l

let prop_wheel_matches_seed_heap =
  let open QCheck in
  Test.make ~count:300 ~name:"sched: wheel pops identical to seed heap"
    (list_of_size Gen.(int_range 0 400) (int_bound 20_000_003))
    apply_ops

(* Dense ties: many events on few distinct timestamps is the engine's
   common case (batched completions at one instant) and the FIFO edge the
   heap's seq field exists for. *)
let prop_parity_under_heavy_ties =
  let open QCheck in
  Test.make ~count:200 ~name:"sched: parity under heavy timestamp ties"
    (list_of_size Gen.(int_range 0 200) (int_bound 40))
    apply_ops

let suite =
  [
    ( "sched.wheel",
      [
        Alcotest.test_case "fifo on equal times" `Quick test_fifo_on_equal_times;
        Alcotest.test_case "overflow far future" `Quick test_overflow_far_future;
        Alcotest.test_case "schedule behind cursor" `Quick test_schedule_behind_cursor;
        Alcotest.test_case "next_time and stats" `Quick test_next_time_and_stats;
        Alcotest.test_case "bulk reverse order" `Quick test_bulk_reverse_order;
      ] );
    ( "sched.parity",
      [
        QCheck_alcotest.to_alcotest prop_wheel_matches_seed_heap;
        QCheck_alcotest.to_alcotest prop_parity_under_heavy_ties;
      ] );
  ]
