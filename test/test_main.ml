(* Aggregates all suites.  Each test_<area>.ml exposes [suite]. *)

let () =
  Alcotest.run "quilt"
    (List.concat [
       Test_util.suite;
       Test_bitset.suite;
       Test_dag.suite;
       Test_ilp.suite;
       Test_cluster.suite;
       Test_ir.suite;
       Test_analysis.suite;
       Test_lang.suite;
       Test_merge.suite;
       Test_platform.suite;
       Test_fuzz.suite;
       Test_vm.suite;
       Test_sched.suite;
       Test_engine.suite;
       Test_apps.suite;
       Test_control.suite;
       Test_fault.suite;
       Test_place.suite;
       Test_obs.suite;
     ])
