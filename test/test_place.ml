(* The placement subsystem: topology math, the four policies' qcheck
   invariants (capacity safety, determinism, placed-or-rejected totality),
   the engine's node model (reservations, capacity denials, image cache,
   node kills), topology-priced cut edges, and the rebalancer loop. *)

module Topology = Quilt_place.Topology
module Placement = Quilt_place.Placement
module Topocost = Quilt_cluster.Topocost
module Decision = Quilt_cluster.Decision
module Types = Quilt_cluster.Types
module Engine = Quilt_platform.Engine
module Loadgen = Quilt_platform.Loadgen
module Rebalancer = Quilt_control.Rebalancer
module Workflow = Quilt_apps.Workflow
module Special = Quilt_apps.Special
module Config = Quilt_core.Config
module Quilt = Quilt_core.Quilt
module Rng = Quilt_util.Rng

(* --- topology --- *)

let two_racks ?image_cache () =
  Topology.make ?image_cache
    [
      Topology.node ~rack:0 ~vcpus:8.0 ~mem_mb:4096.0 ();
      Topology.node ~rack:0 ~vcpus:8.0 ~mem_mb:4096.0 ();
      Topology.node ~rack:1 ~vcpus:4.0 ~mem_mb:2048.0 ();
    ]

let cluster_of = function
  | Topology.Cluster c -> c
  | Topology.Flat -> Alcotest.fail "expected a cluster"

let test_topology_basics () =
  let t = two_racks () in
  let c = cluster_of t in
  Alcotest.(check int) "n_nodes" 3 (Topology.n_nodes t);
  Alcotest.(check int) "flat has one implicit node" 1 (Topology.n_nodes Topology.flat);
  Alcotest.(check bool) "dense ids" true
    (Array.to_list (Array.map (fun n -> n.Topology.node_id) c.Topology.nodes) = [ 0; 1; 2 ]);
  Alcotest.(check bool) "same node" true (Topology.dist c 1 1 = Topology.Same_node);
  Alcotest.(check bool) "same rack" true (Topology.dist c 0 1 = Topology.Same_rack);
  Alcotest.(check bool) "cross rack" true (Topology.dist c 0 2 = Topology.Cross_rack);
  Alcotest.(check (float 1e-9)) "flat rtt is the default" 200.0
    (Topology.rtt_us Topology.flat ~default_rtt_us:200.0 0 5);
  Alcotest.(check (float 1e-9)) "cross-rack tier" c.Topology.rtt_cross_rack_us
    (Topology.rtt_us t ~default_rtt_us:200.0 1 2);
  Alcotest.(check bool) "describe mentions racks" true
    (String.length (Topology.describe t) > 0)

let test_topology_validation () =
  Alcotest.check_raises "empty cluster"
    (Invalid_argument "Topology.make: empty node list") (fun () ->
      ignore (Topology.make []));
  let bad () =
    ignore (Topology.make [ Topology.node ~rack:0 ~vcpus:0.0 ~mem_mb:64.0 () ])
  in
  match bad () with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "non-positive capacity accepted"

(* --- policies: units --- *)

let d ?(vcpus = 2.0) ?(mem = 128.0) s = Placement.demand ~service:s ~vcpus ~mem_mb:mem

let test_flat_placement () =
  let p = Placement.plan Topology.flat Placement.Best_fit [ d "a"; d "b" ] in
  Alcotest.(check bool) "all on node 0" true (p.Placement.placed = [ ("a", 0); ("b", 0) ]);
  Alcotest.(check int) "no rejections" 0 (List.length p.Placement.rejected)

let test_rejections_are_explicit () =
  let tiny = Topology.make [ Topology.node ~rack:0 ~vcpus:4.0 ~mem_mb:4096.0 () ] in
  let p =
    Placement.plan tiny Placement.First_fit [ d "a"; d "b"; d "c"; d ~vcpus:(-1.0) "neg"; d "a" ]
  in
  Alcotest.(check bool) "a and b fit" true
    (Placement.node_of p "a" = Some 0 && Placement.node_of p "b" = Some 0);
  Alcotest.(check bool) "c rejected for capacity" true
    (match List.assoc_opt "c" p.Placement.rejected with
    | Some reason -> String.length reason > 0
    | None -> false);
  Alcotest.(check bool) "negative demand rejected" true
    (List.assoc_opt "neg" p.Placement.rejected = Some "non-positive demand");
  Alcotest.(check bool) "duplicate rejected" true
    (List.mem ("a", "duplicate service") p.Placement.rejected)

let test_locality_colocates_spread_separates () =
  let t = two_racks () in
  let aff = [ { Placement.a_src = "a"; a_dst = "b"; a_weight = 10.0 } ] in
  let loc = Placement.plan ~affinities:aff t Placement.Locality [ d "a"; d "b" ] in
  (match (Placement.node_of loc "a", Placement.node_of loc "b") with
  | Some u, Some v -> Alcotest.(check int) "locality co-locates the pair" u v
  | _ -> Alcotest.fail "locality rejected a feasible pair");
  let spr = Placement.plan ~affinities:aff t Placement.Spread [ d "a"; d "b" ] in
  (match (Placement.node_of spr "a", Placement.node_of spr "b") with
  | Some u, Some v ->
      Alcotest.(check bool) "spread separates racks" true
        (Topology.dist (cluster_of t) u v = Topology.Cross_rack)
  | _ -> Alcotest.fail "spread rejected a feasible pair");
  Alcotest.(check (float 1e-9)) "cross_rack_weight sees the split" 10.0
    (Placement.cross_rack_weight t spr aff);
  Alcotest.(check (float 1e-9)) "co-located pair crosses nothing" 0.0
    (Placement.cross_rack_weight t loc aff)

(* --- policies: qcheck invariants --- *)

let gen_instance seed =
  let rng = Rng.create seed in
  let n_nodes = Rng.int_in rng 1 5 in
  let nodes =
    List.init n_nodes (fun _ ->
        Topology.node ~rack:(Rng.int rng 3)
          ~vcpus:(float_of_int (Rng.int_in rng 2 10))
          ~mem_mb:(float_of_int (Rng.int_in rng 256 2048))
          ())
  in
  let topo = Topology.make nodes in
  let n_dem = Rng.int_in rng 1 12 in
  let demands =
    List.init n_dem (fun i ->
        Placement.demand
          ~service:(Printf.sprintf "s%d" i)
          ~vcpus:(0.5 +. Rng.float rng 3.5)
          ~mem_mb:(16.0 +. Rng.float rng 400.0))
  in
  let affinities =
    if n_dem < 2 then []
    else
      List.init (Rng.int rng 8) (fun _ ->
          let a = Rng.int rng n_dem and b = Rng.int rng n_dem in
          {
            Placement.a_src = Printf.sprintf "s%d" a;
            a_dst = Printf.sprintf "s%d" b;
            a_weight = 1.0 +. Rng.float rng 20.0;
          })
  in
  let policy =
    Rng.pick rng [ Placement.First_fit; Placement.Best_fit; Placement.Locality; Placement.Spread ]
  in
  (topo, policy, demands, affinities, Rng.int rng 1000)

let prop_capacity_never_exceeded =
  QCheck.Test.make ~name:"place: no node exceeds capacity" ~count:300
    (QCheck.int_range 1 1_000_000)
    (fun qseed ->
      let topo, policy, demands, affinities, seed = gen_instance qseed in
      let p = Placement.plan ~seed ~affinities topo policy demands in
      let c = cluster_of topo in
      Array.for_all
        (fun (nd : Topology.node) ->
          let mine =
            List.filter_map
              (fun (s, i) ->
                if i = nd.Topology.node_id then
                  List.find_opt (fun dm -> dm.Placement.d_service = s) demands
                else None)
              p.Placement.placed
          in
          List.fold_left (fun a dm -> a +. dm.Placement.d_vcpus) 0.0 mine
          <= nd.Topology.vcpus +. 1e-9
          && List.fold_left (fun a dm -> a +. dm.Placement.d_mem_mb) 0.0 mine
             <= nd.Topology.mem_mb +. 1e-9)
        c.Topology.nodes)

let prop_equal_seeds_identical =
  QCheck.Test.make ~name:"place: equal seeds give identical placements" ~count:200
    (QCheck.int_range 1 1_000_000)
    (fun qseed ->
      let topo, policy, demands, affinities, seed = gen_instance qseed in
      Placement.plan ~seed ~affinities topo policy demands
      = Placement.plan ~seed ~affinities topo policy demands)

let prop_placed_or_rejected =
  QCheck.Test.make ~name:"place: every demand placed or explicitly rejected" ~count:300
    (QCheck.int_range 1 1_000_000)
    (fun qseed ->
      let topo, policy, demands, affinities, seed = gen_instance qseed in
      let p = Placement.plan ~seed ~affinities topo policy demands in
      let outcome =
        List.map fst p.Placement.placed @ List.map fst p.Placement.rejected
      in
      List.sort compare outcome
      = List.sort compare (List.map (fun dm -> dm.Placement.d_service) demands)
      && List.length outcome = List.length demands)

(* --- engine node model --- *)

let routed_engine ?(seed = 7) ~assign topo () =
  let wf = Special.routed () in
  let engine = Quilt.fresh_platform ~seed ~workflows:[ wf ] () in
  Engine.set_topology ~assign engine topo;
  (engine, wf)

let run_some engine (wf : Workflow.t) n =
  let rng = Rng.create 3 in
  let left = ref n in
  for _ = 1 to n do
    Engine.submit engine ~entry:wf.Workflow.entry ~req:(wf.Workflow.gen_req rng)
      ~on_done:(fun ~latency_us:_ ~ok:_ -> decr left)
  done;
  Engine.drain engine;
  Alcotest.(check int) "all delivered" 0 !left

let test_engine_flat_noops () =
  let wf = Special.routed () in
  let engine = Quilt.fresh_platform ~workflows:[ wf ] () in
  Alcotest.(check bool) "flat topology" true (Engine.topology engine = Topology.Flat);
  Alcotest.(check int) "kill_node is a no-op" 0 (Engine.kill_node engine ~node:0);
  Alcotest.(check bool) "reassign refused" false
    (Engine.reassign engine ~service:"route-split" ~node:0);
  Alcotest.(check int) "no node loads" 0 (Array.length (Engine.node_loads engine));
  Alcotest.(check bool) "no node for services" true
    (Engine.node_of_service engine "route-split" = None);
  let h = Engine.topo_counters engine in
  Alcotest.(check int) "no hops classified" 0
    (h.Engine.hops_same_node + h.Engine.hops_same_rack + h.Engine.hops_cross_rack)

let test_engine_out_of_range_assign () =
  let wf = Special.routed () in
  let engine = Quilt.fresh_platform ~workflows:[ wf ] () in
  match Engine.set_topology ~assign:[ ("route-split", 9) ] engine (two_racks ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "out-of-range node id accepted"

let test_engine_reservations_and_hops () =
  (* Node 0 is sized so all five services' planned first pods (5 x 2 vCPU)
     fit — set_topology accepts over-packed explicit assignments, and the
     always-admitted first pod would then legitimately overcommit. *)
  let roomy =
    Topology.make
      [
        Topology.node ~rack:0 ~vcpus:16.0 ~mem_mb:8192.0 ();
        Topology.node ~rack:1 ~vcpus:4.0 ~mem_mb:2048.0 ();
      ]
  in
  let all_on_node0 = [ "route-split"; "route-a1"; "route-a2"; "route-b1"; "route-b2" ] in
  let engine, wf =
    routed_engine ~assign:(List.map (fun s -> (s, 0)) all_on_node0) roomy ()
  in
  run_some engine wf 10;
  let h = Engine.topo_counters engine in
  Alcotest.(check bool) "co-located: only same-node hops" true
    (h.Engine.hops_same_node > 0 && h.Engine.hops_same_rack = 0 && h.Engine.hops_cross_rack = 0);
  let loads = Engine.node_loads engine in
  Alcotest.(check bool) "node 0 holds reservations" true
    (loads.(0).Engine.nl_used_vcpus > 0.0 && loads.(0).Engine.nl_containers > 0);
  Alcotest.(check bool) "node capacity respected" true
    (loads.(0).Engine.nl_used_vcpus <= loads.(0).Engine.nl_node.Topology.vcpus +. 1e-9);
  (* Split across racks: the same workload must now classify cross-rack. *)
  let engine2, wf2 =
    routed_engine
      ~assign:[ ("route-split", 0); ("route-a1", 2); ("route-a2", 2); ("route-b1", 0); ("route-b2", 0) ]
      (two_racks ()) ()
  in
  run_some engine2 wf2 10;
  let h2 = Engine.topo_counters engine2 in
  Alcotest.(check bool) "split: cross-rack hops appear" true (h2.Engine.hops_cross_rack > 0)

let test_engine_capacity_denials () =
  (* One node that fits exactly one 2-vCPU container: concurrency wants a
     second pod, the node refuses, the denial is counted, and the pool
     never exceeds one. *)
  let one = Topology.make [ Topology.node ~rack:0 ~vcpus:2.0 ~mem_mb:4096.0 () ] in
  let wf = Special.routed () in
  let engine = Quilt.fresh_platform ~workflows:[ wf ] () in
  Engine.set_topology ~assign:[ ("route-split", 0) ] engine one;
  let rng = Rng.create 3 in
  for _ = 1 to 40 do
    Engine.submit engine ~entry:wf.Workflow.entry ~req:(wf.Workflow.gen_req rng)
      ~on_done:(fun ~latency_us:_ ~ok:_ -> ())
  done;
  Engine.drain engine;
  let h = Engine.topo_counters engine in
  Alcotest.(check bool) "denials counted" true (h.Engine.capacity_denials > 0);
  Alcotest.(check bool) "entry pool capped by the node" true
    (Engine.peak_pool_size engine "route-split" = 1)

let test_engine_image_cache () =
  (* Cold start, kill the pool, cold start again: with the node image cache
     the second pull is free, without it both cost the same.  Identical
     event sequences except the cache bit, so the comparison is exact. *)
  let run ~image_cache =
    let engine, wf =
      routed_engine ~assign:[] (two_racks ~image_cache ()) ()
    in
    let lat = ref [] in
    let rng = Rng.create 5 in
    let once () =
      Engine.submit engine ~entry:wf.Workflow.entry ~req:(wf.Workflow.gen_req rng)
        ~on_done:(fun ~latency_us ~ok:_ -> lat := latency_us :: !lat);
      Engine.drain engine
    in
    once ();
    List.iter (fun f -> ignore (Engine.kill_all_containers engine ~fn:f))
      [ "route-split"; "route-a1"; "route-a2"; "route-b1"; "route-b2" ];
    once ();
    match !lat with [ second; first ] -> (first, second) | _ -> Alcotest.fail "two requests"
  in
  let f_on, s_on = run ~image_cache:true in
  let f_off, s_off = run ~image_cache:false in
  Alcotest.(check (float 1e-6)) "first cold start identical either way" f_off f_on;
  Alcotest.(check bool) "cached re-pull strictly faster" true (s_on < s_off);
  Alcotest.(check (float 1e-6)) "uncached re-pull pays full price" f_off s_off

let test_engine_kill_node () =
  let engine, wf =
    routed_engine
      ~assign:[ ("route-split", 0); ("route-a1", 1); ("route-a2", 1); ("route-b1", 1); ("route-b2", 1) ]
      (two_racks ()) ()
  in
  run_some engine wf 5;
  let before = (Engine.counters engine).Engine.crash_kills in
  let on_node1 = (Engine.node_loads engine).(1).Engine.nl_containers in
  Alcotest.(check bool) "node 1 hosts containers" true (on_node1 > 0);
  let killed = Engine.kill_node engine ~node:1 in
  Alcotest.(check int) "every container on the node died" on_node1 killed;
  Alcotest.(check int) "each counted as a crash kill" (before + killed)
    (Engine.counters engine).Engine.crash_kills;
  Alcotest.(check (float 1e-9)) "reservations released" 0.0
    (Engine.node_loads engine).(1).Engine.nl_used_vcpus;
  Alcotest.(check int) "out of range is a no-op" 0 (Engine.kill_node engine ~node:9);
  (* The node is dead capacity-wise only momentarily: the next request
     cold-starts replacements on it. *)
  run_some engine wf 3;
  Alcotest.(check bool) "node repopulates" true
    ((Engine.node_loads engine).(1).Engine.nl_containers > 0)

(* --- topology-priced cut edges --- *)

let routed_solution () =
  let wf = Special.routed () in
  let cfg = { Config.default with Config.cpu_budget_ms = 6.5 } in
  let g =
    match Quilt.profile cfg ~workflows:[ wf ] wf with
    | Ok g -> g
    | Error e -> Alcotest.fail e
  in
  let sol =
    match Decision.solve Decision.Optimal g (Config.limits cfg) with
    | Some s -> s
    | None -> Alcotest.fail "no solution"
  in
  (g, sol)

let test_topocost_flat_recovers_seed_objective () =
  let g, sol = routed_solution () in
  let total_alpha =
    List.fold_left (fun a c -> a +. c.Placement.a_weight) 0.0 (Topocost.cut_affinities g sol)
  in
  let placement = Topocost.place ~vcpus:2.0 ~mem_mb:128.0 Topology.flat g sol in
  Alcotest.(check (float 1e-6)) "flat pricing = alpha x default rtt"
    (total_alpha *. 200.0)
    (Topocost.priced_cost_us ~default_rtt_us:200.0 Topology.flat placement g sol);
  (* A cluster where every tier costs R prices exactly like a flat world
     with rtt R. *)
  let uniform =
    Topology.make ~rtt_same_node_us:200.0 ~rtt_same_rack_us:200.0 ~rtt_cross_rack_us:200.0
      [
        Topology.node ~rack:0 ~vcpus:64.0 ~mem_mb:65536.0 ();
        Topology.node ~rack:1 ~vcpus:64.0 ~mem_mb:65536.0 ();
      ]
  in
  let up = Topocost.place ~vcpus:2.0 ~mem_mb:128.0 uniform g sol in
  Alcotest.(check (float 1e-6)) "uniform cluster = flat"
    (total_alpha *. 200.0)
    (Topocost.priced_cost_us ~default_rtt_us:999.0 uniform up g sol)

let test_topocost_select_argmin_and_ties () =
  let g, sol = routed_solution () in
  match
    Topocost.select ~default_rtt_us:200.0 ~vcpus:2.0 ~mem_mb:128.0 Topology.flat g [ sol; sol ]
  with
  | None -> Alcotest.fail "select on non-empty list"
  | Some (chosen, _, cost) ->
      Alcotest.(check bool) "earlier candidate wins the tie" true (chosen == sol);
      let placement = Topocost.place ~vcpus:2.0 ~mem_mb:128.0 Topology.flat g sol in
      Alcotest.(check (float 1e-6)) "cost matches a direct pricing"
        (Topocost.priced_cost_us ~default_rtt_us:200.0 Topology.flat placement g sol)
        cost;
      Alcotest.(check bool) "empty candidates give None" true
        (Topocost.select ~default_rtt_us:200.0 ~vcpus:2.0 ~mem_mb:128.0 Topology.flat g []
        = None)

(* --- rebalancer --- *)

let test_rebalancer_migrates_off_hot_node () =
  (* Everything packed on node 0 (deliberately over its 8 vCPUs, so
     utilization is far above the hot threshold) with plenty of slack
     elsewhere: the loop must migrate something away, the canary must
     judge it, and the migrated service must really live elsewhere. *)
  let all = [ "route-split"; "route-a1"; "route-a2"; "route-b1"; "route-b2" ] in
  let engine, wf =
    routed_engine ~assign:(List.map (fun s -> (s, 0)) all) (Topology.example ()) ()
  in
  let reb = Rebalancer.create engine () in
  let until = 60_000_000.0 in
  Rebalancer.start reb ~until;
  let res =
    Loadgen.run_open_loop engine ~entry:wf.Workflow.entry ~gen_req:wf.Workflow.gen_req
      ~rate_rps:25.0 ~duration_us:until ~warmup_us:5_000_000.0 ()
  in
  Alcotest.(check bool) "load survived the migrations" true (Loadgen.availability res > 0.95);
  let s = Rebalancer.summary reb in
  Alcotest.(check bool) "at least one migration" true (s.Rebalancer.s_migrations >= 1);
  Alcotest.(check bool) "every migration got a verdict" true
    (s.Rebalancer.s_passes + s.Rebalancer.s_reverts >= 1);
  Alcotest.(check bool) "someone left node 0" true
    (List.exists (fun svc -> Engine.node_of_service engine svc <> Some 0) all);
  Alcotest.(check bool) "rebalancing happened while balanced ticks exist too" true
    (s.Rebalancer.s_ticks > s.Rebalancer.s_migrations)

let test_rebalancer_flat_engine_is_noop () =
  let wf = Special.routed () in
  let engine = Quilt.fresh_platform ~workflows:[ wf ] () in
  let reb = Rebalancer.create engine () in
  Rebalancer.tick reb;
  Rebalancer.tick reb;
  let s = Rebalancer.summary reb in
  Alcotest.(check int) "no migrations on a flat engine" 0 s.Rebalancer.s_migrations;
  Alcotest.(check int) "ticks still counted" 2 s.Rebalancer.s_ticks

let suite =
  [
    ( "place.topology",
      [
        Alcotest.test_case "nodes, racks, rtt tiers" `Quick test_topology_basics;
        Alcotest.test_case "validation" `Quick test_topology_validation;
      ] );
    ( "place.plan",
      [
        Alcotest.test_case "flat puts everything on node 0" `Quick test_flat_placement;
        Alcotest.test_case "rejections are explicit" `Quick test_rejections_are_explicit;
        Alcotest.test_case "locality co-locates, spread separates" `Quick
          test_locality_colocates_spread_separates;
        QCheck_alcotest.to_alcotest prop_capacity_never_exceeded;
        QCheck_alcotest.to_alcotest prop_equal_seeds_identical;
        QCheck_alcotest.to_alcotest prop_placed_or_rejected;
      ] );
    ( "place.engine",
      [
        Alcotest.test_case "flat engine: cluster API is inert" `Quick test_engine_flat_noops;
        Alcotest.test_case "out-of-range assignment refused" `Quick
          test_engine_out_of_range_assign;
        Alcotest.test_case "reservations and hop classes" `Quick
          test_engine_reservations_and_hops;
        Alcotest.test_case "full node denies scale-ups" `Quick test_engine_capacity_denials;
        Alcotest.test_case "per-node image cache" `Quick test_engine_image_cache;
        Alcotest.test_case "node is a failure domain" `Quick test_engine_kill_node;
      ] );
    ( "place.topocost",
      [
        Alcotest.test_case "flat pricing recovers the seed objective" `Quick
          test_topocost_flat_recovers_seed_objective;
        Alcotest.test_case "select is an argmin with stable ties" `Quick
          test_topocost_select_argmin_and_ties;
      ] );
    ( "place.rebalancer",
      [
        Alcotest.test_case "migrates off a hot node under canary" `Quick
          test_rebalancer_migrates_off_hot_node;
        Alcotest.test_case "flat engine is a no-op" `Quick test_rebalancer_flat_engine_is_noop;
      ] );
  ]
