(* Trap and stats parity between the two execution engines.

   Each case runs the same module on the tree-walker (Interp) and the QVM
   (Compile + Vm) and checks byte-identical outcomes: the exact Error
   message the seed interpreter produced, and — via a full stats
   fingerprint — identical accounting on success.  The fuzz suite covers
   these paths statistically; these cases pin each documented trap. *)

open Quilt_ir
module Json = Quilt_util.Json

let fingerprint (s : Interp.stats) =
  let sorted tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
  ( s.Interp.steps,
    s.Interp.cpu_us,
    s.Interp.io_us,
    s.Interp.peak_mem_mb,
    s.Interp.remote_sync,
    s.Interp.remote_async,
    s.Interp.curl_loaded,
    s.Interp.curl_loaded_eagerly,
    sorted s.Interp.calls,
    sorted s.Interp.billing )

let show_outcome = function
  | Ok (res, (steps, _, _, _, _, _, _, _, _, _)) -> Printf.sprintf "Ok %s (%d steps)" res steps
  | Error e -> Printf.sprintf "Error %S" e

(* Runs [src] on both engines and returns the tree-walker's outcome after
   asserting the QVM's is identical (response, trap message, stats). *)
let run_both ?fuel ?(host = Interp.echo_host) ?(fname = "h") ?(req = "{}") src =
  let m = Parser.parse_module src in
  let norm = function
    | Ok (res, stats) -> Ok (res, fingerprint stats)
    | Error e -> Error e
  in
  let tw = norm (Interp.run_handler ?fuel ~host m ~fname ~req) in
  let vm = norm (Vm.run_handler ?fuel ~host m ~fname ~req) in
  Alcotest.(check string) "engines agree" (show_outcome tw) (show_outcome vm);
  if tw <> vm then Alcotest.fail "engines disagree on stats fingerprint";
  tw

let check_trap ?fuel ?fname src expected =
  match run_both ?fuel ?fname src with
  | Error e -> Alcotest.(check string) "trap message" expected e
  | Ok (res, _) -> Alcotest.fail (Printf.sprintf "expected trap %S, got response %s" expected res)

let test_out_of_fuel () =
  check_trap ~fuel:10
    {|
module "t"
define void @h() {
entry:
  br label %loop
loop:
  %x = add i64 1, 1
  br label %loop
}
|}
    "out of fuel"

let test_division_by_zero () =
  check_trap
    {|
module "t"
define void @h() {
entry:
  %z = sub i64 0, 0
  %d = sdiv i64 1, %z
  ret void
}
|}
    "division by zero";
  check_trap
    {|
module "t"
define void @h() {
entry:
  %z = sub i64 0, 0
  %d = srem i64 7, %z
  ret void
}
|}
    "division by zero"

let test_null_pointer () =
  check_trap
    {|
module "t"
define void @h() {
entry:
  %v = load i64, ptr null
  ret void
}
|}
    "memory fault: null pointer dereference"

let test_wild_pointer () =
  (* Block 99 was never allocated; forge its address (99 << 32). *)
  check_trap
    {|
module "t"
define void @h() {
entry:
  %p = add i64 425201762304, 0
  %v = load i64, ptr %p
  ret void
}
|}
    "memory fault: wild pointer (block 99)"

let test_load_out_of_bounds () =
  check_trap
    {|
module "t"
define void @h() {
entry:
  %p = call ptr @quilt_malloc(i64 4)
  %q = gep ptr %p, i64 3
  %v = load i64, ptr %q
  ret void
}
|}
    "memory fault: load i64 out of bounds"

let test_unterminated_string () =
  (* A 2-byte block filled with non-NUL bytes; send_res scans past its end.
     (Gstr globals can't reproduce this: materialization NUL-terminates.) *)
  check_trap
    {|
module "t"
define void @h() {
entry:
  %p = call ptr @quilt_malloc(i64 2)
  store i8 65, ptr %p
  %q = gep ptr %p, i64 1
  store i8 66, ptr %q
  call void @quilt_send_res(ptr %p)
  ret void
}
|}
    "memory fault: unterminated string"

let test_arity_mismatch () =
  check_trap
    {|
module "t"
define i64 @callee(i64 %a, i64 %b) {
entry:
  %s = add i64 %a, %b
  ret i64 %s
}
define void @h() {
entry:
  %r = call i64 @callee(i64 1)
  ret void
}
|}
    "arity mismatch calling @callee"

let test_missing_send_res () =
  match
    run_both {|
module "t"
define void @h() {
entry:
  ret void
}
|}
  with
  | Error e ->
      Alcotest.(check string) "message" "handler returned without calling quilt_send_res" e
  | Ok _ -> Alcotest.fail "expected missing-response error"

let test_unbound_local () =
  check_trap
    {|
module "t"
define void @h() {
entry:
  %y = add i64 %ghost, 1
  ret void
}
|}
    "use of unbound local %ghost"

let test_unresolved_symbol () =
  check_trap
    {|
module "t"
declare ptr @mystery(ptr)
define void @h() {
entry:
  %r = call ptr @mystery(ptr null)
  ret void
}
|}
    "call to unresolved symbol @mystery"

let test_phi_missing_incoming () =
  check_trap
    {|
module "t"
define void @h() {
entry:
  br label %a
a:
  %p = phi i64 [ 1, %zzz ]
  ret void
}
|}
    "phi in %a has no incoming for %entry"

let test_branch_missing_label () =
  check_trap {|
module "t"
define void @h() {
entry:
  br label %nope
}
|}
    "branch to missing label %nope in @h"

let test_no_function () =
  check_trap ~fname:"absent" {|
module "t"
define void @h() {
entry:
  ret void
}
|}
    "no function @absent"

(* A run that touches every stats channel: cpu, io, mem, billing, direct
   calls, and sync+async remote invocations through the echo host. *)
let test_stats_parity_on_success () =
  let src =
    {|
module "t"
@svc = constant str "downstream\00" lang "c"
define i64 @helper(i64 %n) {
entry:
  %m = mul i64 %n, 3
  ret i64 %m
}
define void @h() {
entry:
  call void @quilt_curl_init_once()
  call void @quilt_burn_cpu(i64 120)
  call void @quilt_sleep_io(i64 450)
  call void @quilt_use_mem(i64 33)
  call void @quilt_bill(ptr @svc)
  %a = call i64 @helper(i64 5)
  %b = call i64 @helper(i64 7)
  %req = call ptr @quilt_get_req()
  %sync = call ptr @quilt_sync_inv(ptr @svc, ptr %req)
  %fut = call ptr @quilt_async_inv(ptr @svc, ptr %sync)
  %res = call ptr @quilt_async_wait(ptr %fut)
  call void @quilt_send_res(ptr %res)
  ret void
}
|}
  in
  match run_both ~req:{|{"q":1}|} src with
  | Ok (res, (steps, cpu, io, mem, sync, async, curl, eager, calls, billing)) ->
      Alcotest.(check bool) "response non-empty" true (String.length res > 0);
      Alcotest.(check int) "steps" 14 steps;
      Alcotest.(check (float 0.0)) "cpu" 120.0 cpu;
      Alcotest.(check (float 0.0)) "io" 450.0 io;
      Alcotest.(check (float 0.0)) "mem" 33.0 mem;
      Alcotest.(check int) "one sync call" 1 (List.length sync);
      Alcotest.(check int) "one async call" 1 (List.length async);
      Alcotest.(check (pair bool bool)) "curl lazily loaded" (true, false) (curl, eager);
      Alcotest.(check (list (pair string int))) "direct calls" [ ("helper", 2) ] calls;
      Alcotest.(check (list (pair string int))) "billing" [ ("downstream", 1) ] billing
  | Error e -> Alcotest.fail ("unexpected trap: " ^ e)

(* The engine dispatch honours QUILT_TREEWALK (any value = tree-walker). *)
let test_engine_dispatch () =
  let with_env value body =
    let old = Sys.getenv_opt "QUILT_TREEWALK" in
    (match value with Some v -> Unix.putenv "QUILT_TREEWALK" v | None -> ());
    Fun.protect body ~finally:(fun () ->
        match old with
        | Some v -> Unix.putenv "QUILT_TREEWALK" v
        | None -> if value <> None then Unix.putenv "QUILT_TREEWALK" "")
  in
  (* An empty string is how we "unset": getenv_opt still returns Some "",
     which the dispatch treats as set, so only assert the set direction
     when we know the variable was absent to begin with. *)
  (match Sys.getenv_opt "QUILT_TREEWALK" with
  | None -> Alcotest.(check string) "default engine" "compiled" (Vm.engine_name ())
  | Some _ -> ());
  with_env (Some "1") (fun () ->
      Alcotest.(check string) "escape hatch" "treewalk" (Vm.engine_name ()))

let test_run_local_parity () =
  (* run_local convention: ptr f(ptr) over C strings. *)
  let src =
    {|
module "t"
define ptr @local(ptr %req) {
entry:
  %n = call i64 @quilt_strlen(ptr %req)
  %s = call ptr @c_itoa(i64 %n)
  ret ptr %s
}
|}
  in
  let m = Parser.parse_module src in
  let tw = Interp.run_local ~host:Interp.null_host m ~fname:"local" ~req:"hello" in
  let vm = Vm.run_local ~host:Interp.null_host m ~fname:"local" ~req:"hello" in
  (match tw with
  | Ok (res, _) -> Alcotest.(check string) "length as string" "5" res
  | Error e -> Alcotest.fail e);
  match (tw, vm) with
  | Ok (a, sa), Ok (b, sb) ->
      Alcotest.(check string) "same response" a b;
      if fingerprint sa <> fingerprint sb then Alcotest.fail "stats diverge"
  | _ -> Alcotest.fail "engines disagree on run_local"

let suite =
  [
    ( "vm.parity",
      [
        Alcotest.test_case "out of fuel" `Quick test_out_of_fuel;
        Alcotest.test_case "division by zero" `Quick test_division_by_zero;
        Alcotest.test_case "null pointer" `Quick test_null_pointer;
        Alcotest.test_case "wild pointer" `Quick test_wild_pointer;
        Alcotest.test_case "load out of bounds" `Quick test_load_out_of_bounds;
        Alcotest.test_case "unterminated string" `Quick test_unterminated_string;
        Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
        Alcotest.test_case "missing send_res" `Quick test_missing_send_res;
        Alcotest.test_case "unbound local" `Quick test_unbound_local;
        Alcotest.test_case "unresolved symbol" `Quick test_unresolved_symbol;
        Alcotest.test_case "phi missing incoming" `Quick test_phi_missing_incoming;
        Alcotest.test_case "branch to missing label" `Quick test_branch_missing_label;
        Alcotest.test_case "no such function" `Quick test_no_function;
        Alcotest.test_case "stats parity on success" `Quick test_stats_parity_on_success;
        Alcotest.test_case "engine dispatch env var" `Quick test_engine_dispatch;
        Alcotest.test_case "run_local parity" `Quick test_run_local_parity;
      ] );
  ]
