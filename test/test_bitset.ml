(* Tests for the bitset and domain-pool kernels backing the decision
   algorithms.  The bitset is checked against a [bool array] reference model
   under random operation sequences; the pool is checked for order
   preservation, equality with [List.map], and deterministic error
   propagation. *)

module Bitset = Quilt_util.Bitset
module Pool = Quilt_util.Pool
module Rng = Quilt_util.Rng

(* --- unit tests --- *)

let test_basic_ops () =
  let s = Bitset.create 100 in
  Alcotest.(check int) "length" 100 (Bitset.length s);
  Alcotest.(check bool) "fresh empty" true (Bitset.is_empty s);
  Bitset.set s 0;
  Bitset.set s 63;
  Bitset.set s 64;
  Bitset.set s 99;
  Alcotest.(check int) "count" 4 (Bitset.count s);
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "not mem 62" false (Bitset.mem s 62);
  Alcotest.(check (list int)) "elements increasing" [ 0; 63; 64; 99 ] (Bitset.elements s);
  Bitset.unset s 63;
  Alcotest.(check bool) "unset" false (Bitset.mem s 63);
  Bitset.clear s;
  Alcotest.(check bool) "cleared" true (Bitset.is_empty s)

let test_bounds_raise () =
  let s = Bitset.create 10 in
  let raises f = match f () with () -> false | exception Invalid_argument _ -> true in
  Alcotest.(check bool) "set -1" true (raises (fun () -> Bitset.set s (-1)));
  Alcotest.(check bool) "set n" true (raises (fun () -> Bitset.set s 10));
  Alcotest.(check bool) "mem n" true (raises (fun () -> ignore (Bitset.mem s 10)));
  let t = Bitset.create 11 in
  Alcotest.(check bool) "width mismatch" true (raises (fun () -> Bitset.union_into ~dst:s t))

let test_pure_ops_fresh () =
  let a = Bitset.of_list 70 [ 1; 65 ] and b = Bitset.of_list 70 [ 2; 65 ] in
  let u = Bitset.union a b in
  Alcotest.(check (list int)) "union" [ 1; 2; 65 ] (Bitset.to_list u);
  Alcotest.(check (list int)) "a untouched" [ 1; 65 ] (Bitset.to_list a);
  Alcotest.(check (list int)) "inter" [ 65 ] (Bitset.to_list (Bitset.inter a b));
  Alcotest.(check (list int)) "diff" [ 1 ] (Bitset.to_list (Bitset.diff a b));
  Alcotest.(check bool) "not disjoint" false (Bitset.disjoint a b);
  Alcotest.(check bool) "subset of union" true (Bitset.subset a u);
  let c = Bitset.add a 3 in
  Alcotest.(check (list int)) "add pure" [ 1; 3; 65 ] (Bitset.to_list c);
  Alcotest.(check (list int)) "add source untouched" [ 1; 65 ] (Bitset.to_list a)

let test_zero_width () =
  let s = Bitset.create 0 in
  Alcotest.(check int) "count" 0 (Bitset.count s);
  Alcotest.(check bool) "empty" true (Bitset.is_empty s);
  Alcotest.(check (list int)) "elements" [] (Bitset.elements s)

(* --- qcheck: reference-model equivalence --- *)

(* Interpret a random script of mutations on both the bitset and a plain
   [bool array]; after every step the two must agree on membership, count,
   and element order. *)
let prop_model_equivalence =
  QCheck.Test.make ~name:"bitset = bool-array model under random ops" ~count:200
    (QCheck.int_range 1 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = Rng.int_in rng 1 150 in
      let s = Bitset.create n and m = Array.make n false in
      let agree () =
        Bitset.count s = Array.fold_left (fun a b -> if b then a + 1 else a) 0 m
        && Bitset.to_list s
           = List.filter (fun i -> m.(i)) (List.init n (fun i -> i))
        && Bitset.to_bool_array s = m
        && Bitset.equal s (Bitset.of_bool_array m)
      in
      let ok = ref (agree ()) in
      for _ = 1 to 60 do
        if !ok then begin
          let i = Rng.int_in rng 0 (n - 1) in
          (match Rng.int_in rng 0 3 with
          | 0 -> (Bitset.set s i; m.(i) <- true)
          | 1 -> (Bitset.unset s i; m.(i) <- false)
          | 2 ->
              (* in-place union with a random set *)
              let other = Array.init n (fun _ -> Rng.chance rng 0.2) in
              Bitset.union_into ~dst:s (Bitset.of_bool_array other);
              Array.iteri (fun j b -> if b then m.(j) <- true) other
          | _ ->
              let other = Array.init n (fun _ -> Rng.chance rng 0.7) in
              Bitset.inter_into ~dst:s (Bitset.of_bool_array other);
              Array.iteri (fun j b -> if not b then m.(j) <- false) other);
          ok := agree ()
        end
      done;
      !ok)

let prop_fold_iter_agree =
  QCheck.Test.make ~name:"iter/fold/to_list agree and ascend" ~count:100
    (QCheck.int_range 1 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = Rng.int_in rng 1 200 in
      let s = Bitset.create n in
      for _ = 1 to n / 2 do Bitset.set s (Rng.int_in rng 0 (n - 1)) done;
      let via_iter = ref [] in
      Bitset.iter (fun i -> via_iter := i :: !via_iter) s;
      let via_iter = List.rev !via_iter in
      let via_fold = List.rev (Bitset.fold (fun acc i -> i :: acc) [] s) in
      via_iter = Bitset.to_list s
      && via_fold = via_iter
      && via_iter = List.sort_uniq compare via_iter)

let prop_setops_model =
  QCheck.Test.make ~name:"union/inter/diff = model set ops" ~count:100
    (QCheck.int_range 1 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = Rng.int_in rng 1 130 in
      let a = Array.init n (fun _ -> Rng.chance rng 0.3) in
      let b = Array.init n (fun _ -> Rng.chance rng 0.3) in
      let sa = Bitset.of_bool_array a and sb = Bitset.of_bool_array b in
      Bitset.to_bool_array (Bitset.union sa sb) = Array.init n (fun i -> a.(i) || b.(i))
      && Bitset.to_bool_array (Bitset.inter sa sb) = Array.init n (fun i -> a.(i) && b.(i))
      && Bitset.to_bool_array (Bitset.diff sa sb) = Array.init n (fun i -> a.(i) && not b.(i))
      && Bitset.disjoint sa sb = not (Array.exists (fun x -> x) (Array.init n (fun i -> a.(i) && b.(i))))
      && Bitset.subset sa sb = Array.for_all (fun x -> x) (Array.init n (fun i -> (not a.(i)) || b.(i))))

(* --- pool --- *)

let test_pool_map_order () =
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "parallel = List.map" (List.map f xs) (Pool.map f xs);
  Alcotest.(check (list int)) "domains:1 = List.map" (List.map f xs) (Pool.map ~domains:1 f xs);
  Alcotest.(check (list int)) "mapi indices" xs (Pool.mapi (fun i _ -> i) xs)

let test_pool_map_array () =
  let xs = Array.init 50 (fun i -> i) in
  Alcotest.(check bool) "array variant" true (Pool.map_array (fun x -> x * 2) xs = Array.map (fun x -> x * 2) xs)

let test_pool_empty_and_single () =
  Alcotest.(check (list int)) "empty" [] (Pool.map (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.map (fun x -> x + 1) [ 6 ])

exception Boom of int

let test_pool_error_propagation () =
  (* Several items fail; the earliest-indexed failure must surface,
     regardless of which domain hit it first. *)
  let f x = if x mod 3 = 2 then raise (Boom x) else x in
  (match Pool.map f (List.init 30 (fun i -> i)) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom x -> Alcotest.(check int) "earliest failure wins" 2 x);
  match Pool.map ~domains:1 f (List.init 30 (fun i -> i)) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom x -> Alcotest.(check int) "sequential too" 2 x

let test_pool_map_reduce () =
  let xs = List.init 100 (fun i -> i + 1) in
  Alcotest.(check int) "sum" 5050
    (Pool.map_reduce ~map:(fun x -> x) ~reduce:( + ) 0 xs);
  Alcotest.(check int) "sum, 4 domains" 5050
    (Pool.map_reduce ~domains:4 ~map:(fun x -> x) ~reduce:( + ) 0 xs);
  (* The fold is an ordered left fold, so a non-commutative reduce must see
     mapped results exactly in input order. *)
  let spec = List.fold_left (fun acc x -> (3 * acc) + x) 0 xs in
  Alcotest.(check int) "non-commutative reduce in input order" spec
    (Pool.map_reduce ~domains:4 ~map:(fun x -> x) ~reduce:(fun acc x -> (3 * acc) + x) 0 xs);
  Alcotest.(check (list string)) "reduce sees input order" (List.map string_of_int xs)
    (List.rev
       (Pool.map_reduce ~domains:3 ~map:string_of_int ~reduce:(fun acc s -> s :: acc) [] xs));
  Alcotest.(check int) "empty input yields init" 42
    (Pool.map_reduce ~map:(fun x -> x) ~reduce:( + ) 42 [])

let test_pool_map_reduce_errors () =
  (* A failing map must surface the earliest-indexed exception, join every
     spawned domain, and never run the reduce. *)
  let reduced = ref 0 in
  let f x = if x mod 5 = 3 then raise (Boom x) else x in
  (match Pool.map_reduce ~map:f ~reduce:(fun acc x -> incr reduced; acc + x) 0 (List.init 40 (fun i -> i)) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom x -> Alcotest.(check int) "earliest failure wins" 3 x);
  Alcotest.(check int) "reduce never ran" 0 !reduced;
  (* After the failure the pool must still be usable: no orphaned domains
     wedging the next spawn. *)
  Alcotest.(check int) "pool alive after failure" 10
    (Pool.map_reduce ~domains:4 ~map:(fun x -> x) ~reduce:( + ) 0 [ 1; 2; 3; 4 ])

let prop_pool_matches_list_map =
  QCheck.Test.make ~name:"pool map = List.map for pure functions" ~count:30
    (QCheck.int_range 1 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = Rng.int_in rng 0 64 in
      let xs = List.init n (fun _ -> Rng.int_in rng (-1000) 1000) in
      let f x = (x * 31) lxor 5 in
      Pool.map f xs = List.map f xs)

let suite =
  [
    ( "util.bitset",
      [
        Alcotest.test_case "basic ops" `Quick test_basic_ops;
        Alcotest.test_case "bounds raise" `Quick test_bounds_raise;
        Alcotest.test_case "pure ops fresh" `Quick test_pure_ops_fresh;
        Alcotest.test_case "zero width" `Quick test_zero_width;
        QCheck_alcotest.to_alcotest prop_model_equivalence;
        QCheck_alcotest.to_alcotest prop_fold_iter_agree;
        QCheck_alcotest.to_alcotest prop_setops_model;
      ] );
    ( "util.pool",
      [
        Alcotest.test_case "map order" `Quick test_pool_map_order;
        Alcotest.test_case "map array" `Quick test_pool_map_array;
        Alcotest.test_case "empty and single" `Quick test_pool_empty_and_single;
        Alcotest.test_case "error propagation" `Quick test_pool_error_propagation;
        Alcotest.test_case "map_reduce ordered fold" `Quick test_pool_map_reduce;
        Alcotest.test_case "map_reduce exception safety" `Quick test_pool_map_reduce_errors;
        QCheck_alcotest.to_alcotest prop_pool_matches_list_map;
      ] );
  ]
