(* Tests for the fault subsystem: deterministic plans (equal seeds give
   equal traces and equal end-of-run statistics), the individual fault
   hook points, the retry/hedging gateway's semantics and accounting, the
   blast-radius metrics with the reliability penalty, and the chaos
   scenarios end to end — including the control plane rolling back a
   re-merge that a crash storm poisoned. *)

module Engine = Quilt_platform.Engine
module Loadgen = Quilt_platform.Loadgen
module Plan = Quilt_fault.Plan
module Policy = Quilt_fault.Policy
module Fs = Quilt_fault.Scenario
module Metrics = Quilt_cluster.Metrics
module Types = Quilt_cluster.Types
module Callgraph = Quilt_dag.Callgraph
module Workflow = Quilt_apps.Workflow
module Special = Quilt_apps.Special
module Config = Quilt_core.Config
module Quilt = Quilt_core.Quilt

(* A two-function chain so there is a remote hop to break. *)
let chain_wf =
  let p ~c = { Workflow.compute_us = c; db_us = 0; mem_mb = 2 } in
  {
    Workflow.wf_name = "chain";
    entry = "front";
    functions =
      [
        Workflow.std_fn ~name:"front" ~lang:"rust" ~profile:(p ~c:300) ~children:[ "back" ] ();
        Workflow.std_fn ~name:"back" ~lang:"rust" ~profile:(p ~c:300) ();
      ];
    gen_req = (fun _ -> {|{"data":"x"}|});
    code_edges = [ ("front", "back", Callgraph.Sync) ];
  }

let chain_req = {|{"data":"x"}|}
let fresh_chain ?(seed = 0) () = Quilt.fresh_platform ~seed ~workflows:[ chain_wf ] ()

let one_req ?(entry = "dial") engine r =
  let res = ref None in
  Engine.submit engine ~entry ~req:r ~on_done:(fun ~latency_us ~ok -> res := Some (latency_us, ok));
  Engine.drain engine;
  match !res with Some x -> x | None -> Alcotest.fail "request never completed"

(* Lets at_us = 0 activations land before the first submission. *)
let settle engine = Engine.run_until engine (Engine.now engine +. 1.0)

(* --- the fault hook points, driven through Plan --- *)

let test_plan_kill_fails_inflight () =
  let engine = Test_engine.fresh_dial () in
  Test_engine.warm engine;
  let armed =
    Plan.arm
      (Plan.make ~seed:7 [ { Plan.at_us = 10_000.0; fault = Plan.Kill { fn = "dial"; count = 1 } } ])
      engine
  in
  let _, ok = one_req engine (Test_engine.req ~cpu:0 ~io:100_000 ~mem:0) in
  Alcotest.(check bool) "in-flight request failed" false ok;
  let c = Engine.counters engine in
  Alcotest.(check int) "crash kill counted" 1 c.Engine.crash_kills;
  Alcotest.(check int) "kill traced" 1 (List.length (Plan.trace armed));
  let _, ok2 = one_req engine (Test_engine.req ~cpu:1000 ~io:0 ~mem:0) in
  Alcotest.(check bool) "pool recovers after the kill" true ok2

let test_plan_mem_spike_ooms () =
  let engine = Test_engine.fresh_dial ~mem_limit:64.0 () in
  Test_engine.warm engine;
  let _ =
    Plan.arm
      (Plan.make ~seed:7
         [ { Plan.at_us = 10_000.0; fault = Plan.Mem_spike { fn = "dial"; mb = 200.0; duration_us = 50_000.0 } } ])
      engine
  in
  let _, ok = one_req engine (Test_engine.req ~cpu:0 ~io:100_000 ~mem:0) in
  Alcotest.(check bool) "request on the OOMed container failed" false ok;
  Alcotest.(check int) "oom counted" 1 (Engine.counters engine).Engine.oom_kills

let test_plan_net_drop_with_hop_timeout () =
  let engine = fresh_chain () in
  Engine.set_hop_timeout engine (Some 50_000.0);
  let _ =
    Plan.arm
      (Plan.make ~seed:3
         [ { Plan.at_us = 0.0; fault = Plan.Net_drop { src = "front"; dst = "back"; p = 1.0; duration_us = 1e8 } } ])
      engine
  in
  settle engine;
  let _, ok = one_req ~entry:"front" engine chain_req in
  Alcotest.(check bool) "dropped internal hop fails the request" false ok;
  let c = Engine.counters engine in
  Alcotest.(check bool) "drop counted" true (c.Engine.net_drops >= 1);
  Alcotest.(check bool) "hop timeout counted" true (c.Engine.hop_timeouts >= 1)

let test_plan_net_delay_adds_latency () =
  let measure ~delayed =
    let engine = fresh_chain () in
    ignore (one_req ~entry:"front" engine chain_req);
    if delayed then begin
      ignore
        (Plan.arm
           (Plan.make ~seed:3
              [
                {
                  Plan.at_us = 0.0;
                  fault =
                    Plan.Net_delay
                      { src = "client"; dst = "front"; delay_us = 5_000.0; jitter_us = 0.0; duration_us = 1e8 };
                };
              ])
           engine);
      settle engine
    end;
    fst (one_req ~entry:"front" engine chain_req)
  in
  let healthy = measure ~delayed:false and slow = measure ~delayed:true in
  Alcotest.(check (float 1.0)) "ingress delay shows up end to end" 5_000.0 (slow -. healthy)

let test_plan_cpu_degrade_slows_compute () =
  let engine = Test_engine.fresh_dial () in
  Test_engine.warm engine;
  let r = Test_engine.req ~cpu:10_000 ~io:0 ~mem:0 in
  let healthy, _ = one_req engine r in
  let _ =
    Plan.arm
      (Plan.make ~seed:1
         [ { Plan.at_us = 0.0; fault = Plan.Cpu_degrade { fn = "dial"; factor = 0.5; duration_us = 1e8 } } ])
      engine
  in
  settle engine;
  let degraded, ok = one_req engine r in
  Alcotest.(check bool) "still succeeds, just slowly" true ok;
  Alcotest.(check bool) "compute takes ~2x at factor 0.5" true (degraded > 1.5 *. healthy)

let test_plan_cache_flush_slows_cold_start () =
  let cold ~flushed =
    let engine = Test_engine.fresh_dial () in
    if flushed then begin
      ignore
        (Plan.arm
           (Plan.make ~seed:1
              [ { Plan.at_us = 0.0; fault = Plan.Image_cache_flush { pull_factor = 5.0; duration_us = 1e8 } } ])
           engine);
      settle engine
    end;
    fst (one_req engine (Test_engine.req ~cpu:0 ~io:0 ~mem:0))
  in
  let healthy = cold ~flushed:false and flushed = cold ~flushed:true in
  Alcotest.(check bool) "flushed image cache inflates the cold start" true (flushed > healthy +. 10.0)

(* --- determinism: the acceptance property of the whole subsystem --- *)

(* A storm plus probabilistic drops exercises every draw the plan's RNG
   makes (victim shuffles, drop coins); the signature captures the trace
   and every counter the run produced. *)
let chaos_signature plan_seed =
  let engine = fresh_chain ~seed:1 () in
  Engine.set_hop_timeout engine (Some 100_000.0);
  let plan =
    Plan.make ~seed:plan_seed
      [
        { Plan.at_us = 0.0; fault = Plan.Net_drop { src = "*"; dst = "*"; p = 0.3; duration_us = 150_000.0 } };
        {
          Plan.at_us = 5_000.0;
          fault = Plan.Crash_storm { fn = "front"; every_us = 20_000.0; until_us = 100_000.0; count = 1 };
        };
      ]
  in
  let armed = Plan.arm plan engine in
  let r =
    Loadgen.run_open_loop engine ~entry:"front"
      ~gen_req:(fun _ -> chain_req)
      ~rate_rps:50.0 ~duration_us:200_000.0 ()
  in
  (Plan.trace armed, r.Loadgen.successes, r.Loadgen.failures, r.Loadgen.offered, r.Loadgen.counters)

(* --- topology-aware patterns (node:/rack:) --- *)

let chain_cluster () =
  (* front on rack 0, back alone on rack 1. *)
  let topo =
    Quilt_place.Topology.make
      [
        Quilt_place.Topology.node ~rack:0 ~vcpus:8.0 ~mem_mb:4096.0 ();
        Quilt_place.Topology.node ~rack:1 ~vcpus:8.0 ~mem_mb:4096.0 ();
      ]
  in
  let engine = fresh_chain () in
  Engine.set_topology ~assign:[ ("front", 0); ("back", 1) ] engine topo;
  engine

let test_pattern_precedence () =
  let e = chain_cluster () in
  (* Exact name first: even a service named like a location pattern. *)
  Alcotest.(check bool) "exact name" true (Plan.matches e "front" "front");
  Alcotest.(check bool) "exact name beats location parsing" true
    (Plan.matches e "node:1" "node:1");
  Alcotest.(check bool) "wildcard" true (Plan.matches e "*" "back");
  (* Location forms resolve against the cluster. *)
  Alcotest.(check bool) "node:0 hosts front" true (Plan.matches e "node:0" "front");
  Alcotest.(check bool) "node:0 does not host back" false (Plan.matches e "node:0" "back");
  Alcotest.(check bool) "rack:1 hosts back" true (Plan.matches e "rack:1" "back");
  Alcotest.(check bool) "rack:1 does not host front" false (Plan.matches e "rack:1" "front");
  (* The client sits outside the cluster. *)
  Alcotest.(check bool) "client never matches a location" false
    (Plan.matches e "node:0" "client");
  Alcotest.(check bool) "client still matches itself" true (Plan.matches e "client" "client");
  (* Flat engines have no locations. *)
  let flat = fresh_chain () in
  Alcotest.(check bool) "flat engine: node: matches nothing" false
    (Plan.matches flat "node:0" "front");
  Alcotest.(check bool) "flat engine: rack: matches nothing" false
    (Plan.matches flat "rack:0" "front");
  Alcotest.(check bool) "garbage pattern matches nothing" false
    (Plan.matches e "node:x" "front")

let test_net_fault_by_rack_pattern () =
  (* Drop every hop into rack 1: the front->back call dies, so the request
     fails once the hop timeout fires. *)
  let engine = chain_cluster () in
  Engine.set_hop_timeout engine (Some 50_000.0);
  let _ =
    Plan.arm
      (Plan.make ~seed:3
         [ { Plan.at_us = 0.0; fault = Plan.Net_drop { src = "*"; dst = "rack:1"; p = 1.0; duration_us = 1e8 } } ])
      engine
  in
  settle engine;
  let _, ok = one_req ~entry:"front" engine chain_req in
  Alcotest.(check bool) "hop into the dark rack fails the request" false ok;
  Alcotest.(check bool) "drop counted" true ((Engine.counters engine).Engine.net_drops >= 1);
  (* The same plan against a flat engine matches no hop at all.  No hop
     timeout here: a wrongly matched drop would fail (or hang) the request
     on its own. *)
  let flat = fresh_chain () in
  let _ =
    Plan.arm
      (Plan.make ~seed:3
         [ { Plan.at_us = 0.0; fault = Plan.Net_drop { src = "*"; dst = "rack:1"; p = 1.0; duration_us = 1e8 } } ])
      flat
  in
  settle flat;
  let _, ok = one_req ~entry:"front" flat chain_req in
  Alcotest.(check bool) "flat engine unaffected" true ok

let test_plan_kill_node_fault () =
  (* A slow back end keeps the request in flight when the node dies. *)
  let p ~c = { Workflow.compute_us = c; db_us = 0; mem_mb = 2 } in
  let wf =
    {
      chain_wf with
      Workflow.functions =
        [
          Workflow.std_fn ~name:"front" ~lang:"rust" ~profile:(p ~c:300) ~children:[ "back" ] ();
          Workflow.std_fn ~name:"back" ~lang:"rust" ~profile:(p ~c:100_000) ();
        ];
    }
  in
  let engine = Quilt.fresh_platform ~workflows:[ wf ] () in
  Engine.set_topology ~assign:[ ("front", 0); ("back", 1) ] engine
    (Quilt_place.Topology.make
       [
         Quilt_place.Topology.node ~rack:0 ~vcpus:8.0 ~mem_mb:4096.0 ();
         Quilt_place.Topology.node ~rack:1 ~vcpus:8.0 ~mem_mb:4096.0 ();
       ]);
  ignore (one_req ~entry:"front" engine chain_req);
  let armed =
    Plan.arm
      (Plan.make ~seed:7 [ { Plan.at_us = 10_000.0; fault = Plan.Kill_node { node = 1 } } ])
      engine
  in
  let _, ok = one_req ~entry:"front" engine chain_req in
  Alcotest.(check bool) "request through the dead node failed" false ok;
  Alcotest.(check bool) "crash kills counted" true
    ((Engine.counters engine).Engine.crash_kills >= 1);
  Alcotest.(check int) "activation traced" 1 (List.length (Plan.trace armed));
  let _, ok2 = one_req ~entry:"front" engine chain_req in
  Alcotest.(check bool) "replacements cold-start on the node" true ok2

let test_plan_determinism_unit () =
  let a = chaos_signature 11 and b = chaos_signature 11 in
  Alcotest.(check bool) "same seed, same trace and stats" true (a = b);
  let t, _, _, _, _ = a in
  Alcotest.(check bool) "the plan actually fired" true (List.length t > 2)

let prop_plan_determinism =
  QCheck.Test.make ~name:"equal plan seeds give equal traces and counters" ~count:8
    (QCheck.int_range 0 1000)
    (fun seed -> chaos_signature seed = chaos_signature seed)

let cell_signature seed =
  match
    Fs.run_one ~smoke:true ~seed ~scenario:"crashstorm" ~arm:Fs.Cm ~policy:Policy.default_retry
      ~policy_name:"retry" ()
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
      let r = o.Fs.f_result in
      let s = o.Fs.f_gateway in
      ( o.Fs.f_trace,
        (r.Loadgen.successes, r.Loadgen.failures, r.Loadgen.offered, r.Loadgen.counters),
        (s.Policy.attempts, s.Policy.retries, s.Policy.timeouts, s.Policy.wasted_work_us),
        Loadgen.availability r )

let test_scenario_determinism () =
  Alcotest.(check bool) "a whole scenario cell is reproducible" true (cell_signature 0 = cell_signature 0)

let test_unknown_scenario_is_error () =
  match Fs.run_one ~smoke:true ~scenario:"nope" ~arm:Fs.Baseline ~policy:Policy.none ~policy_name:"none" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown scenario should be rejected"

(* --- the retry/hedging gateway --- *)

(* Fail the first [n] client→gateway hops, then heal. *)
let drop_first_ingress engine n =
  let dropped = ref 0 in
  Engine.set_network_fault engine
    (Some
       (fun ~caller ~callee:_ ->
         match caller with
         | None when !dropped < n ->
             incr dropped;
             Engine.Net_drop
         | _ -> Engine.Net_ok))

let gateway_once engine policy r =
  let gw = Policy.create engine policy in
  let res = ref None in
  Policy.submit gw ~entry:"dial" ~req:r ~on_done:(fun ~latency_us:_ ~ok -> res := Some ok);
  Engine.drain engine;
  match !res with Some ok -> (ok, Policy.stats gw) | None -> Alcotest.fail "gateway never delivered"

let test_policy_retry_recovers () =
  let engine = Test_engine.fresh_dial () in
  Test_engine.warm engine;
  drop_first_ingress engine 1;
  let ok, s = gateway_once engine Policy.default_retry (Test_engine.req ~cpu:1000 ~io:0 ~mem:0) in
  Alcotest.(check bool) "delivered ok on attempt 2" true ok;
  Alcotest.(check int) "one retry" 1 s.Policy.retries;
  Alcotest.(check int) "recovered" 1 s.Policy.recovered;
  Alcotest.(check int) "one replayed chain" 1 s.Policy.replayed_chains;
  Alcotest.(check int) "delivered exactly once" 1 (s.Policy.delivered_ok + s.Policy.delivered_fail)

let test_policy_at_most_once_never_retries () =
  let engine = Test_engine.fresh_dial () in
  Test_engine.warm engine;
  drop_first_ingress engine 1;
  let ok, s = gateway_once engine Policy.none (Test_engine.req ~cpu:1000 ~io:0 ~mem:0) in
  Alcotest.(check bool) "failure surfaces" false ok;
  Alcotest.(check int) "no retries" 0 s.Policy.retries;
  Alcotest.(check int) "no hedges" 0 s.Policy.hedges;
  Alcotest.(check int) "delivered fail" 1 s.Policy.delivered_fail

let test_policy_budget_denial () =
  let engine = Test_engine.fresh_dial () in
  Test_engine.warm engine;
  drop_first_ingress engine 10;
  let policy = { Policy.default_retry with Policy.retry_budget = 0.0; retry_burst = 0.0 } in
  let ok, s = gateway_once engine policy (Test_engine.req ~cpu:1000 ~io:0 ~mem:0) in
  Alcotest.(check bool) "fails without budget" false ok;
  Alcotest.(check int) "denied by the empty bucket" 1 s.Policy.budget_denied;
  Alcotest.(check int) "no retry happened" 0 s.Policy.retries

let test_policy_hedging_wastes_the_loser () =
  let engine = Test_engine.fresh_dial () in
  Test_engine.warm engine;
  let ok, s = gateway_once engine Policy.hedged (Test_engine.req ~cpu:0 ~io:300_000 ~mem:0) in
  Alcotest.(check bool) "first completion wins" true ok;
  Alcotest.(check int) "one hedge launched" 1 s.Policy.hedges;
  Alcotest.(check int) "hedge is a replayed chain" 1 s.Policy.replayed_chains;
  Alcotest.(check bool) "the losing attempt is wasted work" true (s.Policy.wasted_work_us > 0.0);
  Alcotest.(check int) "delivered exactly once" 1 s.Policy.delivered_ok

(* --- blast-radius metrics and the reliability penalty --- *)

let hand_graph () =
  let node id name = { Callgraph.id; name; mem_mb = 10.0; cpu = 1.0; mergeable = true } in
  Callgraph.make
    ~nodes:[| node 0 "a"; node 1 "b"; node 2 "c" |]
    ~edges:
      [
        { Callgraph.src = 0; dst = 1; weight = 10; kind = Callgraph.Sync };
        { Callgraph.src = 1; dst = 2; weight = 10; kind = Callgraph.Sync };
      ]
    ~root:0 ~invocations:10

let sg ~root ~members = { Types.root; absorbed = [ root ]; members; cpu = 3.0; mem_mb = 30.0 }

let test_blast_metrics () =
  let g = hand_graph () in
  let merged = { Types.roots = [ 0 ]; subgraphs = [ sg ~root:0 ~members:[| true; true; true |] ]; cost = 0 } in
  let singles =
    {
      Types.roots = [ 0; 1; 2 ];
      subgraphs =
        [
          sg ~root:0 ~members:[| true; false; false |];
          sg ~root:1 ~members:[| false; true; false |];
          sg ~root:2 ~members:[| false; false; true |];
        ];
      cost = 20;
    }
  in
  Alcotest.(check (list int)) "domain sizes, merged" [ 3 ] (Metrics.fault_domain_sizes merged);
  Alcotest.(check (list int)) "domain sizes, singletons" [ 1; 1; 1 ] (Metrics.fault_domain_sizes singles);
  (* Unit work per node (rate 1 × cpu 1): merged replays 3²/3 = 3 units,
     singletons 3·(1²/3) = 1 — merging triples the expected replay bill. *)
  Alcotest.(check (float 1e-9)) "replay, merged" 3.0 (Metrics.expected_replay_work g merged);
  Alcotest.(check (float 1e-9)) "replay, singletons" 1.0 (Metrics.expected_replay_work g singles);
  Alcotest.(check (float 1e-9)) "lambda 0 is pure cost" 20.0 (Metrics.reliability_score ~lambda:0.0 g singles);
  Alcotest.(check bool) "a big lambda flips the ranking" true
    (Metrics.reliability_score ~lambda:20.0 g singles < Metrics.reliability_score ~lambda:20.0 g merged)

let test_penalty_prefers_small_domains () =
  let wf = Special.routed () in
  let wf = { wf with Workflow.gen_req = Special.routed_req ~b_share:0.3 } in
  let cfg =
    { Config.default with Config.cpu_budget_ms = 6.5; profile_duration_us = 8_000_000.0; seed = 1 }
  in
  let graph =
    match Quilt.profile cfg ~workflows:[ wf ] wf with Ok g -> g | Error e -> Alcotest.fail e
  in
  let solve lambda =
    match Quilt.optimize ~graph { cfg with Config.reliability_lambda = lambda } ~workflows:[ wf ] wf with
    | Ok t -> t.Quilt.solution
    | Error e -> Alcotest.fail e
  in
  let s0 = solve 0.0 and s_inf = solve 1000.0 in
  Alcotest.(check bool) "lambda 0 still merges" true
    (List.exists (fun n -> n > 1) (Metrics.fault_domain_sizes s0));
  Alcotest.(check bool) "huge lambda buys singleton fault domains" true
    (List.for_all (fun n -> n = 1) (Metrics.fault_domain_sizes s_inf));
  Alcotest.(check bool) "and a smaller expected replay" true
    (Metrics.expected_replay_work graph s_inf < Metrics.expected_replay_work graph s0)

(* --- end to end: scenarios and the control plane --- *)

let test_retry_buys_availability () =
  let run policy policy_name =
    match Fs.run_one ~smoke:true ~scenario:"crashstorm" ~arm:Fs.Quilt_merged ~policy ~policy_name () with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  let bare = run Policy.none "none" in
  let retried = run Policy.default_retry "retry" in
  let av (o : Fs.outcome) = Loadgen.availability o.Fs.f_result in
  Alcotest.(check bool) "the storm hurts without retries" true (av bare < 1.0);
  Alcotest.(check bool) "retries recover availability" true (av retried > av bare);
  let s = retried.Fs.f_gateway in
  Alcotest.(check bool) "at a measured replay cost" true
    (s.Policy.replayed_chains > 0 && s.Policy.wasted_work_us > 0.0);
  (* Bounded: the budget caps replays well below the offered load. *)
  Alcotest.(check bool) "bounded by the retry budget" true
    (float_of_int s.Policy.replayed_chains
    <= (Policy.default_retry.Policy.retry_budget *. float_of_int s.Policy.offered)
       +. Policy.default_retry.Policy.retry_burst)

let test_crashy_scenario_triggers_rollback () =
  match Quilt_control.Scenario.run ~smoke:true ~with_controller:true "crashy" with
  | Error e -> Alcotest.fail e
  | Ok o ->
      let c = o.Quilt_control.Scenario.o_phased.Loadgen.overall.Loadgen.counters in
      Alcotest.(check bool) "the storm really killed containers" true (c.Engine.crash_kills > 0);
      (match o.Quilt_control.Scenario.o_summary with
      | None -> Alcotest.fail "controller summary missing"
      | Some s ->
          Alcotest.(check bool) "the controller rolled the poisoned merge back" true
            (s.Quilt_control.Controller.s_rollbacks + s.Quilt_control.Controller.s_watchdogs >= 1))

let suite =
  [
    ( "fault.plan",
      [
        Alcotest.test_case "kill fails in-flight, pool recovers" `Quick test_plan_kill_fails_inflight;
        Alcotest.test_case "mem spike ooms past the limit" `Quick test_plan_mem_spike_ooms;
        Alcotest.test_case "net drop + hop timeout" `Quick test_plan_net_drop_with_hop_timeout;
        Alcotest.test_case "net delay adds latency" `Quick test_plan_net_delay_adds_latency;
        Alcotest.test_case "cpu degrade slows compute" `Quick test_plan_cpu_degrade_slows_compute;
        Alcotest.test_case "cache flush slows cold starts" `Quick test_plan_cache_flush_slows_cold_start;
      ] );
    ( "fault.patterns",
      [
        Alcotest.test_case "pattern precedence: exact > * > node:/rack:" `Quick
          test_pattern_precedence;
        Alcotest.test_case "net fault by rack pattern" `Quick test_net_fault_by_rack_pattern;
        Alcotest.test_case "kill-node plan fault" `Quick test_plan_kill_node_fault;
      ] );
    ( "fault.determinism",
      [
        Alcotest.test_case "pinned chaos run" `Quick test_plan_determinism_unit;
        QCheck_alcotest.to_alcotest prop_plan_determinism;
        Alcotest.test_case "whole scenario cell" `Quick test_scenario_determinism;
        Alcotest.test_case "unknown scenario" `Quick test_unknown_scenario_is_error;
      ] );
    ( "fault.policy",
      [
        Alcotest.test_case "retry recovers a transient" `Quick test_policy_retry_recovers;
        Alcotest.test_case "at-most-once never retries" `Quick test_policy_at_most_once_never_retries;
        Alcotest.test_case "empty budget denies retries" `Quick test_policy_budget_denial;
        Alcotest.test_case "hedge loser is wasted work" `Quick test_policy_hedging_wastes_the_loser;
      ] );
    ( "fault.blast_radius",
      [
        Alcotest.test_case "replay work and domain sizes" `Quick test_blast_metrics;
        Alcotest.test_case "penalty shrinks chosen domains" `Quick test_penalty_prefers_small_domains;
      ] );
    ( "fault.e2e",
      [
        Alcotest.test_case "retries buy availability, bounded" `Quick test_retry_buys_availability;
        Alcotest.test_case "crashy triggers controller rollback" `Quick test_crashy_scenario_triggers_rollback;
      ] );
  ]
