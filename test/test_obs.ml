(* Observability subsystem: recorder non-interference and determinism,
   head-sampling properties, live-profiler fidelity (sampled spans drive
   the decision to the ground-truth grouping), metrics registry semantics,
   exporter formats, and the controller's obs mode end to end. *)

module Engine = Quilt_platform.Engine
module Loadgen = Quilt_platform.Loadgen
module Workflow = Quilt_apps.Workflow
module Quilt = Quilt_core.Quilt
module Config = Quilt_core.Config
module Recorder = Quilt_obs.Recorder
module Profiler = Quilt_obs.Profiler
module Metrics = Quilt_obs.Metrics
module Export = Quilt_obs.Export
module Controller = Quilt_control.Controller
module Scenario = Quilt_control.Scenario
module Json = Quilt_util.Json

let check = Alcotest.check
let checkb msg expected actual = check Alcotest.bool msg expected actual

let compose () =
  List.find
    (fun w -> w.Workflow.wf_name = "compose-post")
    (Quilt_apps.Deathstar.social_network ~async:false ())

let drive ?recorder ?(seed = 0) ?(rate = 120.0) ?(duration_us = 3.0e6) wf =
  let engine = Quilt.fresh_platform ~seed:(11 + seed) ~workflows:[ wf ] () in
  (match recorder with Some r -> Recorder.attach r engine | None -> ());
  let r =
    Loadgen.run_open_loop engine ~entry:wf.Workflow.entry ~gen_req:wf.Workflow.gen_req
      ~rate_rps:rate ~duration_us ~warmup_us:0.0 ~seed ()
  in
  (engine, r)

(* Everything the load generator and engine observe — exact float
   equality, as the engine determinism tests use. *)
let fingerprint engine (r : Loadgen.result) =
  ( (r.Loadgen.successes, r.Loadgen.failures, r.Loadgen.offered),
    (Loadgen.median_ms r, Loadgen.p99_ms r, Loadgen.mean_ms r),
    Engine.counters engine,
    Engine.now engine )

(* --- non-interference: the sink observes, never perturbs --- *)

let test_sink_does_not_perturb () =
  let wf = compose () in
  let bare =
    let e, r = drive wf in
    fingerprint e r
  in
  let full =
    let rec_ = Recorder.create () in
    let e, r = drive ~recorder:rec_ wf in
    checkb "full sampling recorded spans" true (Recorder.length rec_ > 0);
    fingerprint e r
  in
  let sampled =
    let rec_ = Recorder.create ~sample_period:7 ~seed:3 () in
    let e, r = drive ~recorder:rec_ wf in
    fingerprint e r
  in
  checkb "attached recorder leaves the run bit-identical" true (bare = full);
  checkb "sampling leaves the run bit-identical" true (bare = sampled)

let test_detach_restores_noop_path () =
  let wf = compose () in
  let engine = Quilt.fresh_platform ~seed:11 ~workflows:[ wf ] () in
  let r = Recorder.create () in
  Recorder.attach r engine;
  Recorder.detach engine;
  let _ =
    Loadgen.run_open_loop engine ~entry:wf.Workflow.entry ~gen_req:wf.Workflow.gen_req
      ~rate_rps:50.0 ~duration_us:1.0e6 ~warmup_us:0.0 ()
  in
  check Alcotest.int "detached recorder saw nothing" 0 (Recorder.recorded r);
  check Alcotest.int "not even root verdicts" 0 (Recorder.seen_roots r)

(* --- head sampling --- *)

let test_sampling_deterministic_and_unbiased () =
  let decisions ~period ~seed =
    let sk = Recorder.sink (Recorder.create ~sample_period:period ~seed ()) in
    List.init 8000 (fun rid -> sk.Engine.sk_sample rid)
  in
  checkb "equal seeds decide identically" true
    (decisions ~period:8 ~seed:5 = decisions ~period:8 ~seed:5);
  checkb "different seeds decide differently" true
    (decisions ~period:8 ~seed:5 <> decisions ~period:8 ~seed:6);
  checkb "period 1 keeps everything" true
    (List.for_all (fun b -> b) (decisions ~period:1 ~seed:0));
  let kept = List.length (List.filter (fun b -> b) (decisions ~period:8 ~seed:0)) in
  (* 8000 Bernoulli(1/8) trials: expect ~1000; a wide band guards against a
     broken hash (all-keep or all-drop), not distribution shape. *)
  checkb "1/8 sampling keeps roughly 1/8" true (kept > 600 && kept < 1400)

let test_sampled_chains_are_whole () =
  let wf = compose () in
  let r = Recorder.create ~sample_period:4 () in
  let _ = drive ~recorder:r wf in
  let spans = Recorder.to_list r in
  checkb "spans recorded" true (spans <> []);
  let rids = List.sort_uniq compare (List.map (fun s -> s.Recorder.sp_rid) spans) in
  check Alcotest.int "distinct rids = sampled roots" (Recorder.sampled_roots r)
    (List.length rids);
  checkb "a sampled chain includes its client-ingress span" true
    (List.for_all
       (fun rid ->
         List.exists
           (fun s ->
             s.Recorder.sp_rid = rid && s.Recorder.sp_caller = None
             && s.Recorder.sp_fn = wf.Workflow.entry)
           spans)
       rids);
  List.iter
    (fun s ->
      checkb "send <= enq <= start <= end" true
        (s.Recorder.sp_send <= s.Recorder.sp_enq
        && s.Recorder.sp_enq <= s.Recorder.sp_start
        && s.Recorder.sp_start <= s.Recorder.sp_end);
      if s.Recorder.sp_local then
        checkb "local spans have no queue or hop time" true
          (s.Recorder.sp_send = s.Recorder.sp_start))
    spans

let test_ring_overwrites_oldest () =
  let wf = compose () in
  let r = Recorder.create ~capacity:64 () in
  let _ = drive ~recorder:r wf in
  check Alcotest.int "length capped at capacity" 64 (Recorder.length r);
  checkb "older spans were overwritten" true (Recorder.recorded r > 64);
  let ends = List.map (fun s -> s.Recorder.sp_end) (Recorder.to_list r) in
  checkb "retained spans stay in completion order" true (ends = List.sort compare ends);
  checkb "out-of-range get raises" true
    (try
       ignore (Recorder.get r 64);
       false
     with Invalid_argument _ -> true)

(* --- determinism: equal seeds => identical spans, profiles, decision --- *)

let decision_fp wf r =
  match
    Profiler.callgraph ~code_edges:wf.Workflow.code_edges ~entry:wf.Workflow.entry r
  with
  | Error e -> "error: " ^ e
  | Ok g -> (
      match Quilt.optimize ~graph:(Quilt.with_optin wf g) Config.default ~workflows:[ wf ] wf with
      | Error e -> "error: " ^ e
      | Ok t -> Controller.fingerprint t)

let prop_equal_seeds_identical =
  QCheck.Test.make ~count:4 ~name:"equal seeds => identical spans, profiles, decision"
    QCheck.(pair (int_bound 20) (int_range 1 8))
    (fun (seed, period) ->
      let run () =
        let wf = compose () in
        let r = Recorder.create ~sample_period:period ~seed () in
        let _, res = drive ~recorder:r ~seed ~rate:80.0 ~duration_us:2.0e6 wf in
        (res.Loadgen.successes, Recorder.to_list r, Profiler.profiles r, decision_fp wf r)
      in
      run () = run ())

(* --- live-profiler fidelity: the acceptance pin --- *)

let agreement_case wf ~period ~seed =
  let cfg = { Config.default with Config.seed = Config.default.Config.seed + seed } in
  let truth =
    match Quilt.optimize cfg ~workflows:[ wf ] wf with
    | Ok t -> t
    | Error e -> Alcotest.fail ("ground-truth optimize: " ^ e)
  in
  let r = Recorder.create ~sample_period:period ~seed () in
  let _ = drive ~recorder:r ~seed ~rate:50.0 ~duration_us:6.0e6 wf in
  match
    Profiler.callgraph ~code_edges:wf.Workflow.code_edges ~entry:wf.Workflow.entry r
  with
  | Error e -> Alcotest.fail ("live profile: " ^ e)
  | Ok g -> (
      match Quilt.optimize ~graph:(Quilt.with_optin wf g) cfg ~workflows:[ wf ] wf with
      | Error e -> Alcotest.fail ("live re-decision: " ^ e)
      | Ok live ->
          check Alcotest.string
            (Printf.sprintf "%s 1/%d grouping matches ground truth" wf.Workflow.wf_name period)
            (Controller.fingerprint truth) (Controller.fingerprint live))

let test_decision_agreement_compose () =
  agreement_case (compose ()) ~period:1 ~seed:0;
  agreement_case (compose ()) ~period:4 ~seed:1

let test_decision_agreement_routed () =
  agreement_case (Quilt_apps.Special.routed ()) ~period:1 ~seed:0;
  agreement_case (Quilt_apps.Special.routed ()) ~period:4 ~seed:1

let test_profiler_folds () =
  let wf = compose () in
  let r = Recorder.create ~sample_period:2 () in
  let _ = drive ~recorder:r wf in
  let sampled = Recorder.sampled_roots r in
  check Alcotest.int "invocations = sampled ingress spans" sampled
    (Profiler.invocations ~entry:wf.Workflow.entry r);
  let profiles = Profiler.profiles r in
  let entry_p = List.find (fun p -> p.Profiler.fp_fn = wf.Workflow.entry) profiles in
  check Alcotest.int "entry profile counts every sampled chain" sampled
    entry_p.Profiler.fp_calls;
  checkb "entry burns CPU" true (entry_p.Profiler.fp_cpu_ms > 0.0);
  checkb "per-instance footprint is positive" true (entry_p.Profiler.fp_mem_mb > 0.0);
  let edges = Profiler.edge_counts r in
  check Alcotest.int "client ingress edge counts sampled roots" sampled
    (List.assoc (None, wf.Workflow.entry) edges);
  checkb "fan-out edges observed" true (List.length edges > 1)

(* --- metrics registry --- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~labels:[ ("arm", "a"); ("wf", "x") ] "requests" in
  Metrics.inc c 3;
  (* Same identity under reordered labels: one instrument accumulates. *)
  let c' = Metrics.counter m ~labels:[ ("wf", "x"); ("arm", "a") ] "requests" in
  Metrics.inc c' 2;
  check Alcotest.int "label order is canonical" 5 (Metrics.counter_value c);
  let g = Metrics.gauge m "temp" in
  Metrics.set g 1.5;
  Metrics.set g 2.5;
  checkb "gauge keeps the last value" true (Metrics.gauge_value g = 2.5);
  let h = Metrics.histogram m "lat" in
  Metrics.observe h 100.0;
  Metrics.observe h 200.0;
  check Alcotest.int "histogram observed" 2 (Quilt_util.Histogram.count (Metrics.hist h));
  checkb "re-registering under a different kind is rejected" true
    (try
       ignore (Metrics.gauge m ~labels:[ ("arm", "a"); ("wf", "x") ] "requests");
       false
     with Invalid_argument _ -> true);
  match Metrics.snapshot m with
  | Json.Obj kvs ->
      let list_len k = match List.assoc k kvs with Json.List l -> List.length l | _ -> -1 in
      check Alcotest.int "one counter series" 1 (list_len "counters");
      check Alcotest.int "one gauge series" 1 (list_len "gauges");
      check Alcotest.int "one histogram series" 1 (list_len "histograms")
  | _ -> Alcotest.fail "snapshot must be an object"

(* --- exporters --- *)

let traced_recorder () =
  let wf = compose () in
  let r = Recorder.create ~sample_period:4 () in
  let _ = drive ~recorder:r ~duration_us:1.5e6 wf in
  (wf, r)

let test_chrome_trace_shape () =
  let _, r = traced_recorder () in
  match Export.chrome_trace [ ("baseline", r); ("quilt", r) ] with
  | Json.Obj kvs -> (
      match List.assoc "traceEvents" kvs with
      | Json.List events ->
          let phase e =
            match e with
            | Json.Obj f -> ( match List.assoc "ph" f with Json.String s -> s | _ -> "?")
            | _ -> "?"
          in
          let xs = List.filter (fun e -> phase e = "X") events in
          let ms = List.filter (fun e -> phase e = "M") events in
          check Alcotest.int "one X event per span per arm" (2 * Recorder.length r)
            (List.length xs);
          check Alcotest.int "one process_name record per arm" 2 (List.length ms);
          List.iter
            (fun e ->
              match e with
              | Json.Obj f ->
                  (match List.assoc "dur" f with
                  | Json.Float d -> checkb "non-negative duration" true (d >= 0.0)
                  | _ -> Alcotest.fail "dur must be a float")
              | _ -> Alcotest.fail "event must be an object")
            xs
      | _ -> Alcotest.fail "traceEvents must be a list")
  | _ -> Alcotest.fail "chrome trace must be an object"

let test_folded_stacks () =
  let wf, r = traced_recorder () in
  let stacks = Export.folded r in
  checkb "stacks produced" true (stacks <> []);
  List.iter
    (fun (stack, weight) ->
      checkb "positive weight" true (weight > 0);
      checkb "non-empty stack" true (stack <> ""))
    stacks;
  checkb "the entry roots at least one stack" true
    (List.exists
       (fun (stack, _) ->
         stack = wf.Workflow.entry
         || String.starts_with ~prefix:(wf.Workflow.entry ^ ";") stack)
       stacks);
  let prefixed = Export.folded ~prefix:"arm" r in
  checkb "prefix roots every stack" true
    (List.for_all (fun (s, _) -> String.starts_with ~prefix:"arm;" s) prefixed);
  let rendered = Export.folded_to_string stacks in
  check Alcotest.int "one line per stack"
    (List.length stacks)
    (List.length (String.split_on_char '\n' (String.trim rendered)))

(* --- controller obs mode, end to end --- *)

let run_obs_scenario name =
  match Scenario.run ~smoke:true ~obs_sample:2 ~with_controller:true name with
  | Ok o -> o
  | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" name e)

let summary_of (o : Scenario.outcome) =
  match o.Scenario.o_summary with
  | Some s -> s
  | None -> Alcotest.fail "controller run must produce a summary"

let test_obs_mode_path_shift_adapts () =
  let o = run_obs_scenario "path-shift" in
  let s = summary_of o in
  checkb "remerged from sampled spans alone" true (s.Controller.s_remerges >= 1);
  check Alcotest.int "no rollbacks" 0 (s.Controller.s_rollbacks + s.Controller.s_watchdogs);
  checkb "hot b-chain co-located with the entry" true
    (List.mem [ "route-b1"; "route-b2"; "route-split" ] o.Scenario.o_final_groups)

let test_obs_mode_steady_keeps () =
  let o = run_obs_scenario "steady" in
  let s = summary_of o in
  check Alcotest.int "no remerges" 0 s.Controller.s_remerges;
  checkb "groups unchanged" true (o.Scenario.o_initial_groups = o.Scenario.o_final_groups)

let suite =
  [
    ( "obs.recorder",
      [
        Alcotest.test_case "sink never perturbs the run" `Quick test_sink_does_not_perturb;
        Alcotest.test_case "detach restores the no-op path" `Quick test_detach_restores_noop_path;
        Alcotest.test_case "sampling deterministic + unbiased" `Quick
          test_sampling_deterministic_and_unbiased;
        Alcotest.test_case "sampled chains are whole" `Quick test_sampled_chains_are_whole;
        Alcotest.test_case "ring overwrites oldest" `Quick test_ring_overwrites_oldest;
        QCheck_alcotest.to_alcotest prop_equal_seeds_identical;
      ] );
    ( "obs.profiler",
      [
        Alcotest.test_case "decision agreement: compose-post" `Quick
          test_decision_agreement_compose;
        Alcotest.test_case "decision agreement: routed" `Quick test_decision_agreement_routed;
        Alcotest.test_case "profile folds" `Quick test_profiler_folds;
      ] );
    ( "obs.metrics",
      [ Alcotest.test_case "registry semantics + snapshot" `Quick test_metrics_registry ] );
    ( "obs.export",
      [
        Alcotest.test_case "chrome trace shape" `Quick test_chrome_trace_shape;
        Alcotest.test_case "folded stacks" `Quick test_folded_stacks;
      ] );
    ( "obs.controller",
      [
        Alcotest.test_case "path-shift adapts from sampled spans" `Quick
          test_obs_mode_path_shift_adapts;
        Alcotest.test_case "steady keeps hands still" `Quick test_obs_mode_steady_keeps;
      ] );
  ]
