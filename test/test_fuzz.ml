(* Pipeline fuzzing: generate random well-typed workflows (random DAG shape,
   random languages, random bodies; see Quilt_lang.Astgen), merge them
   fully, and check that the merged module — executed in the QIR
   interpreter with a host that rejects network calls — computes exactly
   what the reference evaluator computes for the distributed workflow.

   This is the repository's strongest soundness check: it exercises the
   frontends, RenameFunc, the linker's runtime deduplication, MergeFunc's
   localization and shim generation, DelayHTTP, DCE, and the interpreter in
   one property.

   The differential properties at the bottom hold the two execution engines
   (tree-walker and QVM) to exact observational equivalence: same
   responses, same trap messages, same stats — including under fuel
   starvation, where the engines must give out at the same instruction. *)

module Ast = Quilt_lang.Ast
module Astgen = Quilt_lang.Astgen
module Eval = Quilt_lang.Eval
module Pipeline = Quilt_merge.Pipeline
module Interp = Quilt_ir.Interp
module Vm = Quilt_ir.Vm

let gen_workflow = Astgen.gen_workflow
let lookup_for = Astgen.lookup_for

let rec reference fns svc req =
  let invoke ~kind:_ ~name ~req = fst (reference fns name req) in
  Eval.run ~invoke (lookup_for fns svc) ~req

let prop_merged_equals_reference =
  QCheck.Test.make ~name:"fuzz: fully merged workflow = distributed workflow" ~count:120
    (QCheck.int_range 1 1_000_000)
    (fun seed ->
      let names, fns = gen_workflow seed in
      (* Type-check first: the generator must only produce well-typed
         functions; a Type_error here is a generator bug worth failing on. *)
      List.iter Ast.check_fn fns;
      let req = Printf.sprintf "{\"data\":\"d%d\",\"k\":%d}" (seed mod 50) (seed mod 17) in
      let expected, _ = reference fns (List.hd names) req in
      let report =
        Pipeline.merge_group ~lookup:(lookup_for fns) ~members:names ~root:(List.hd names) ()
      in
      match
        Interp.run_handler ~host:Interp.null_host report.Pipeline.merged_module
          ~fname:(Pipeline.entry_handler (List.hd names))
          ~req
      with
      | Ok (got, stats) -> got = expected && stats.Interp.remote_sync = [] && not stats.Interp.curl_loaded
      | Error _ -> false)

let prop_partial_merge_equals_reference =
  QCheck.Test.make ~name:"fuzz: partially merged workflow = distributed workflow" ~count:60
    (QCheck.int_range 1 1_000_000)
    (fun seed ->
      let names, fns = gen_workflow seed in
      List.iter Ast.check_fn fns;
      match names with
      | _ :: _ :: _ :: _ ->
          (* Merge a prefix; the rest stays remote through a host that
             evaluates the callee workflows. *)
          let members = List.filteri (fun i _ -> i < 2) names in
          let req = Printf.sprintf "{\"data\":\"p%d\"}" (seed mod 50) in
          let expected, _ = reference fns (List.hd names) req in
          let report =
            Pipeline.merge_group ~lookup:(lookup_for fns) ~members ~root:(List.hd names) ()
          in
          let host = { Interp.invoke = (fun ~kind:_ ~name ~req -> fst (reference fns name req)) } in
          (match
             Interp.run_handler ~host report.Pipeline.merged_module
               ~fname:(Pipeline.entry_handler (List.hd names))
               ~req
           with
          | Ok (got, _) -> got = expected
          | Error _ -> false)
      | _ -> true)

let prop_eval_deterministic =
  QCheck.Test.make ~name:"fuzz: reference evaluator is deterministic" ~count:60
    (QCheck.int_range 1 1_000_000)
    (fun seed ->
      let names, fns = gen_workflow seed in
      let req = "{\"data\":\"x\"}" in
      let a, _ = reference fns (List.hd names) req in
      let b, _ = reference fns (List.hd names) req in
      a = b)

let prop_guarded_merge_equals_reference =
  QCheck.Test.make ~name:"fuzz: guarded merge (random alpha) = distributed workflow" ~count:60
    (QCheck.int_range 1 1_000_000)
    (fun seed ->
      let names, fns = gen_workflow seed in
      let alpha = 1 + (seed mod 3) in
      let report =
        Pipeline.merge_group ~lookup:(lookup_for fns) ~members:names ~root:(List.hd names)
          ~edge_mode:(fun ~caller:_ ~callee:_ -> Pipeline.Guarded alpha)
          ()
      in
      let req = Printf.sprintf "{\"data\":\"g%d\"}" (seed mod 50) in
      let expected, _ = reference fns (List.hd names) req in
      (* Overflow calls go remote; the host evaluates them faithfully. *)
      let host = { Interp.invoke = (fun ~kind:_ ~name ~req -> fst (reference fns name req)) } in
      match
        Interp.run_handler ~host report.Pipeline.merged_module
          ~fname:(Pipeline.entry_handler (List.hd names))
          ~req
      with
      | Ok (got, _) -> got = expected
      | Error _ -> false)

let prop_pipeline_report_covers_members =
  QCheck.Test.make ~name:"fuzz: merge report lists every non-root member once" ~count:60
    (QCheck.int_range 1 1_000_000)
    (fun seed ->
      let names, fns = gen_workflow seed in
      let report =
        Pipeline.merge_group ~lookup:(lookup_for fns) ~members:names ~root:(List.hd names) ()
      in
      let merged = List.map fst report.Pipeline.rounds in
      List.sort compare merged = List.sort compare (List.tl names))

let prop_merged_module_text_roundtrip =
  QCheck.Test.make ~name:"fuzz: merged modules survive print+parse" ~count:40
    (QCheck.int_range 1 1_000_000)
    (fun seed ->
      let names, fns = gen_workflow seed in
      let report =
        Pipeline.merge_group ~lookup:(lookup_for fns) ~members:names ~root:(List.hd names) ()
      in
      let printed = Quilt_ir.Pp.to_string report.Pipeline.merged_module in
      let reparsed = Quilt_ir.Parser.parse_module printed in
      (* Round-trip is printer-stable, and the reparsed module still runs. *)
      let req = "{\"data\":\"rt\"}" in
      let expected, _ = reference fns (List.hd names) req in
      Quilt_ir.Pp.to_string reparsed = printed
      &&
      match
        Interp.run_handler ~host:Interp.null_host reparsed
          ~fname:(Pipeline.entry_handler (List.hd names))
          ~req
      with
      | Ok (got, _) -> got = expected
      | Error _ -> false)

(* The analysis-driven optimization passes (shim inlining, SCCP, jump
   threading, liveness DCE) must be observationally invisible: same
   response, same billing, same per-callee call counts — except for the
   inlined shims themselves, whose call-stack entries disappear by
   design.  Executed steps may only shrink (instruction count may not:
   inlining a shim with several call sites duplicates its tiny body). *)
let prop_optimize_differential =
  QCheck.Test.make ~name:"fuzz: optimize passes preserve response/calls/billing" ~count:60
    (QCheck.int_range 1 1_000_000)
    (fun seed ->
      let names, fns = gen_workflow seed in
      let merge opt =
        Pipeline.merge_group ~lookup:(lookup_for fns) ~members:names ~root:(List.hd names)
          ~billing:true ~optimize:opt ()
      in
      let r0 = merge false and r1 = merge true in
      let req = Printf.sprintf "{\"data\":\"o%d\",\"k\":%d}" (seed mod 50) (seed mod 17) in
      let run (r : Pipeline.report) =
        Interp.run_handler ~host:Interp.null_host r.Pipeline.merged_module
          ~fname:r.Pipeline.entry ~req
      in
      match (run r0, run r1) with
      | Ok (a, s0), Ok (b, s1) ->
          let sorted tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
          let non_shim tbl =
            List.filter (fun (k, _) -> not (Quilt_ir.Pass_shiminline.is_shim k)) (sorted tbl)
          in
          a = b
          && sorted s0.Interp.billing = sorted s1.Interp.billing
          && non_shim s0.Interp.calls = non_shim s1.Interp.calls
          && s1.Interp.steps <= s0.Interp.steps
      | Error e0, Error e1 -> e0 = e1
      | _ -> false)

(* Every merged module is clean under the strict verifier and the
   interference analyzer: no Error-severity diagnostic, ever. *)
let prop_merged_strict_clean =
  QCheck.Test.make ~name:"fuzz: merged modules lint clean under --strict" ~count:60
    (QCheck.int_range 1 1_000_000)
    (fun seed ->
      let names, fns = gen_workflow seed in
      let report =
        Pipeline.merge_group ~lookup:(lookup_for fns) ~members:names ~root:(List.hd names) ()
      in
      let m = report.Pipeline.merged_module in
      let module Verify = Quilt_ir.Verify in
      List.for_all
        (fun d -> d.Verify.severity <> Verify.Error)
        (Verify.run ~strict:true m @ Verify.interference m))

(* --- Differential harness: tree-walker vs QVM --- *)

(* Everything observable about a run, including mutable-hashtable stats
   flattened into a comparable value.  Engine equivalence means equality on
   this whole fingerprint, not just on the response. *)
let fingerprint (s : Interp.stats) =
  let sorted tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
  ( s.Interp.steps,
    s.Interp.cpu_us,
    s.Interp.io_us,
    s.Interp.peak_mem_mb,
    s.Interp.remote_sync,
    s.Interp.remote_async,
    s.Interp.curl_loaded,
    s.Interp.curl_loaded_eagerly,
    sorted s.Interp.calls,
    sorted s.Interp.billing )

let outcome = function
  | Ok (res, stats) -> Ok (res, fingerprint stats)
  | Error e -> Error e

let same_outcome a b =
  if a = b then true
  else begin
    let show = function
      | Ok (res, (steps, _, _, _, _, _, _, _, _, _)) ->
          Printf.sprintf "Ok %s (%d steps)" res steps
      | Error e -> Printf.sprintf "Error %s" e
    in
    QCheck.Test.fail_reportf "engines disagree:\n  treewalk: %s\n  compiled: %s" (show a) (show b)
  end

let prop_vm_differential_merged =
  QCheck.Test.make ~name:"fuzz: QVM = tree-walker on merged workflows (response+stats)" ~count:120
    (QCheck.int_range 1 1_000_000)
    (fun seed ->
      let names, fns = gen_workflow seed in
      let report =
        Pipeline.merge_group ~lookup:(lookup_for fns) ~members:names ~root:(List.hd names) ()
      in
      let m = report.Pipeline.merged_module in
      let fname = report.Pipeline.entry in
      let req = Printf.sprintf "{\"data\":\"v%d\",\"k\":%d}" (seed mod 50) (seed mod 17) in
      let tw = outcome (Interp.run_handler ~host:Interp.null_host m ~fname ~req) in
      let vm = outcome (Vm.run_handler ~host:Interp.null_host m ~fname ~req) in
      same_outcome tw vm)

let prop_vm_differential_guarded =
  QCheck.Test.make
    ~name:"fuzz: QVM = tree-walker on guarded merges with a live host" ~count:60
    (QCheck.int_range 1 1_000_000)
    (fun seed ->
      let names, fns = gen_workflow seed in
      let alpha = 1 + (seed mod 3) in
      let report =
        Pipeline.merge_group ~lookup:(lookup_for fns) ~members:names ~root:(List.hd names)
          ~edge_mode:(fun ~caller:_ ~callee:_ -> Pipeline.Guarded alpha)
          ()
      in
      let m = report.Pipeline.merged_module in
      let fname = report.Pipeline.entry in
      let req = Printf.sprintf "{\"data\":\"w%d\"}" (seed mod 50) in
      let host = { Interp.invoke = (fun ~kind:_ ~name ~req -> fst (reference fns name req)) } in
      let tw = outcome (Interp.run_handler ~host m ~fname ~req) in
      let vm = outcome (Vm.run_handler ~host m ~fname ~req) in
      same_outcome tw vm)

let prop_vm_differential_fuel =
  QCheck.Test.make
    ~name:"fuzz: QVM = tree-walker under fuel starvation (same trap, same step)" ~count:120
    (QCheck.int_range 1 1_000_000)
    (fun seed ->
      let names, fns = gen_workflow seed in
      let report =
        Pipeline.merge_group ~lookup:(lookup_for fns) ~members:names ~root:(List.hd names) ()
      in
      let m = report.Pipeline.merged_module in
      let fname = report.Pipeline.entry in
      let req = Printf.sprintf "{\"data\":\"f%d\"}" (seed mod 50) in
      (* A fuel budget somewhere inside the run: both engines must either
         finish identically or run out at the same instruction count. *)
      let fuel = 1 + (seed mod 300) in
      let tw = outcome (Interp.run_handler ~fuel ~host:Interp.null_host m ~fname ~req) in
      let vm = outcome (Vm.run_handler ~fuel ~host:Interp.null_host m ~fname ~req) in
      same_outcome tw vm)

let prop_vm_differential_unmerged =
  QCheck.Test.make
    ~name:"fuzz: QVM = tree-walker on single-function modules (frontend output)" ~count:120
    (QCheck.int_range 1 1_000_000)
    (fun seed ->
      let _, fns = gen_workflow seed in
      (* The last member has no callees: its module runs without a live
         host even before merging. *)
      let fn = List.nth fns (List.length fns - 1) in
      let m = Quilt_lang.Frontend.compile fn in
      let fname = Ast.handler_symbol fn.Ast.fn_name in
      let req = Printf.sprintf "{\"data\":\"u%d\"}" (seed mod 50) in
      let tw = outcome (Interp.run_handler ~host:Interp.echo_host m ~fname ~req) in
      let vm = outcome (Vm.run_handler ~host:Interp.echo_host m ~fname ~req) in
      same_outcome tw vm)

let suite =
  [
    ( "fuzz.pipeline",
      [
        QCheck_alcotest.to_alcotest prop_merged_equals_reference;
        QCheck_alcotest.to_alcotest prop_partial_merge_equals_reference;
        QCheck_alcotest.to_alcotest prop_eval_deterministic;
        QCheck_alcotest.to_alcotest prop_merged_module_text_roundtrip;
        QCheck_alcotest.to_alcotest prop_guarded_merge_equals_reference;
        QCheck_alcotest.to_alcotest prop_pipeline_report_covers_members;
        QCheck_alcotest.to_alcotest prop_optimize_differential;
        QCheck_alcotest.to_alcotest prop_merged_strict_clean;
      ] );
    ( "fuzz.vm-differential",
      [
        QCheck_alcotest.to_alcotest prop_vm_differential_merged;
        QCheck_alcotest.to_alcotest prop_vm_differential_guarded;
        QCheck_alcotest.to_alcotest prop_vm_differential_fuel;
        QCheck_alcotest.to_alcotest prop_vm_differential_unmerged;
      ] );
  ]
