(* Tests for quilt_dag: call-graph invariants, alpha, descendants, generator. *)

module Callgraph = Quilt_dag.Callgraph
module Gen = Quilt_dag.Gen
module Rng = Quilt_util.Rng
module Bitset = Quilt_util.Bitset

let mk_node id name = { Callgraph.id; name; mem_mb = 10.0; cpu = 1.0; mergeable = true }

let simple_graph () =
  (* root -> a -> c ; root -> b ; b -> c *)
  let nodes = [| mk_node 0 "root"; mk_node 1 "a"; mk_node 2 "b"; mk_node 3 "c" |] in
  let edges =
    [
      { Callgraph.src = 0; dst = 1; weight = 10; kind = Callgraph.Sync };
      { Callgraph.src = 0; dst = 2; weight = 20; kind = Callgraph.Async };
      { Callgraph.src = 1; dst = 3; weight = 10; kind = Callgraph.Sync };
      { Callgraph.src = 2; dst = 3; weight = 20; kind = Callgraph.Sync };
    ]
  in
  Callgraph.make ~nodes ~edges ~root:0 ~invocations:10

let test_make_valid () =
  let g = simple_graph () in
  Alcotest.(check int) "nodes" 4 (Callgraph.n_nodes g);
  Alcotest.(check int) "succs of root" 2 (List.length (Callgraph.succs g 0));
  Alcotest.(check int) "preds of c" 2 (List.length (Callgraph.preds g 3))

let test_make_rejects_cycle () =
  let nodes = [| mk_node 0 "r"; mk_node 1 "a" |] in
  let edges =
    [
      { Callgraph.src = 0; dst = 1; weight = 1; kind = Callgraph.Sync };
      { Callgraph.src = 1; dst = 0; weight = 1; kind = Callgraph.Sync };
    ]
  in
  match Callgraph.make ~nodes ~edges ~root:0 ~invocations:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected cycle rejection"

let test_make_rejects_unreachable () =
  let nodes = [| mk_node 0 "r"; mk_node 1 "a"; mk_node 2 "island" |] in
  let edges = [ { Callgraph.src = 0; dst = 1; weight = 1; kind = Callgraph.Sync } ] in
  match Callgraph.make ~nodes ~edges ~root:0 ~invocations:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected unreachable rejection"

let test_make_rejects_bad_ids () =
  let nodes = [| mk_node 1 "r" |] in
  match Callgraph.make ~nodes ~edges:[] ~root:0 ~invocations:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected dense-id rejection"

let test_alpha_ceiling () =
  let g = simple_graph () in
  (* N = 10; weights 10 and 20 give alphas 1 and 2. *)
  let alphas = List.map (fun e -> Callgraph.alpha g e) g.Callgraph.edges in
  Alcotest.(check (list int)) "alphas" [ 1; 2; 1; 2 ] alphas

let test_alpha_rounds_up () =
  let nodes = [| mk_node 0 "r"; mk_node 1 "a" |] in
  let edges = [ { Callgraph.src = 0; dst = 1; weight = 11; kind = Callgraph.Sync } ] in
  let g = Callgraph.make ~nodes ~edges ~root:0 ~invocations:10 in
  Alcotest.(check int) "ceil(11/10) = 2" 2 (Callgraph.alpha g (List.hd g.Callgraph.edges))

let test_topo_order () =
  let g = simple_graph () in
  let order = Callgraph.topo_order g in
  let pos = Array.make 4 0 in
  List.iteri (fun i v -> pos.(v) <- i) order;
  List.iter
    (fun e -> Alcotest.(check bool) "edge respects topo order" true (pos.(e.Callgraph.src) < pos.(e.Callgraph.dst)))
    g.Callgraph.edges

let test_descendant_sets () =
  let g = simple_graph () in
  let d = Callgraph.descendant_sets g in
  Alcotest.(check int) "root reaches all" 4 (Bitset.count d.(0));
  Alcotest.(check bool) "a reaches c" true (Bitset.mem d.(1) 3);
  Alcotest.(check bool) "a does not reach b" false (Bitset.mem d.(1) 2);
  Alcotest.(check (list int)) "c reaches only itself" [ 3 ] (Bitset.elements d.(3))

let test_weighted_in_degree () =
  let g = simple_graph () in
  Alcotest.(check (float 1e-9)) "W_in(c)" 30.0 (Callgraph.weighted_in_degree g 3);
  Alcotest.(check (float 1e-9)) "W_in(root)" 0.0 (Callgraph.weighted_in_degree g 0)

let test_find_node () =
  let g = simple_graph () in
  (match Callgraph.find_node g "b" with
  | Some n -> Alcotest.(check int) "id of b" 2 n.Callgraph.id
  | None -> Alcotest.fail "b not found");
  Alcotest.(check bool) "missing" true (Callgraph.find_node g "zzz" = None)

let test_line_graph () =
  let g = Gen.line_graph ~n:5 ~cpu:1.0 ~mem_mb:10.0 ~weight:1 in
  Alcotest.(check int) "5 nodes" 5 (Callgraph.n_nodes g);
  Alcotest.(check int) "4 edges" 4 (List.length g.Callgraph.edges)

let test_diamond () =
  let g = Gen.diamond () in
  Alcotest.(check int) "4 nodes" 4 (Callgraph.n_nodes g);
  let async = List.filter (fun e -> e.Callgraph.kind = Callgraph.Async) g.Callgraph.edges in
  Alcotest.(check int) "2 async edges" 2 (List.length async)

let test_random_rdag_properties () =
  let rng = Rng.create 17 in
  for _ = 1 to 20 do
    let n = Rng.int_in rng 5 40 in
    let g, limits = Gen.random_rdag rng ~n () in
    Alcotest.(check int) "n nodes" n (Callgraph.n_nodes g);
    (* Validation already checks connectivity/acyclicity in make; re-derive
       the edge-count recipe. *)
    let n_edges = List.length g.Callgraph.edges in
    Alcotest.(check bool) "at least spanning edges" true (n_edges >= n - 1);
    Alcotest.(check bool) "positive limits" true (limits.Gen.max_cpu > 0.0 && limits.Gen.max_mem_mb > 0.0)
  done

let test_random_rdag_needs_two_containers () =
  (* The generator promises the whole graph exceeds the limits, so at least
     two containers are needed. *)
  let rng = Rng.create 5 in
  for _ = 1 to 10 do
    let g, limits = Gen.random_rdag rng ~n:12 () in
    let root = Callgraph.node g g.Callgraph.root in
    let cpu = ref root.Callgraph.cpu and mem = ref root.Callgraph.mem_mb in
    List.iter
      (fun e ->
        let a = float_of_int (Callgraph.alpha g e) in
        let callee = Callgraph.node g e.Callgraph.dst in
        cpu := !cpu +. (a *. callee.Callgraph.cpu);
        mem := !mem +. callee.Callgraph.mem_mb;
        if e.Callgraph.kind = Callgraph.Async then mem := !mem +. ((a -. 1.0) *. callee.Callgraph.mem_mb))
      g.Callgraph.edges;
    Alcotest.(check bool) "whole graph exceeds some limit" true
      (!cpu > limits.Gen.max_cpu || !mem > limits.Gen.max_mem_mb)
  done

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = if i + nn > nh then false else String.sub hay i nn = needle || scan (i + 1) in
  scan 0

let test_to_dot_contains_nodes () =
  let g = simple_graph () in
  let dot = Callgraph.to_dot g in
  Alcotest.(check bool) "mentions root" true (contains_substring dot "root");
  Alcotest.(check bool) "has async style" true (contains_substring dot "dashed")

(* The precomputed adjacency index and the bitset reachability kernels must
   agree exactly with naive edge-list scans. *)
let prop_adjacency_matches_edge_list =
  let open QCheck in
  Test.make ~name:"succs/preds adjacency = naive edge-list scan" ~count:50
    (int_range 2 60)
    (fun n ->
      let rng = Rng.create (n * 131) in
      let g, _ = Quilt_dag.Gen.random_rdag rng ~n () in
      let edges = g.Callgraph.edges in
      List.for_all
        (fun v ->
          Callgraph.succs g v = List.filter (fun e -> e.Callgraph.src = v) edges
          && Callgraph.preds g v = List.filter (fun e -> e.Callgraph.dst = v) edges
          && Array.to_list (Callgraph.out_edges g v) = Callgraph.succs g v
          && Array.to_list (Callgraph.in_edges g v) = Callgraph.preds g v)
        (List.init n (fun i -> i)))

let prop_descendants_match_naive_dfs =
  let open QCheck in
  Test.make ~name:"bitset descendants/reachability = naive DFS" ~count:50
    (int_range 2 50)
    (fun n ->
      let rng = Rng.create (n * 733) in
      let g, _ = Quilt_dag.Gen.random_rdag rng ~n () in
      let naive_reach v =
        let seen = Array.make n false in
        let rec go u =
          if not seen.(u) then begin
            seen.(u) <- true;
            List.iter (fun e -> go e.Callgraph.dst) (Callgraph.succs g u)
          end
        in
        go v;
        seen
      in
      let d = Callgraph.descendant_sets g in
      List.for_all
        (fun v ->
          Bitset.to_bool_array d.(v) = naive_reach v
          && Bitset.to_bool_array (Callgraph.reachable_from g v) = naive_reach v)
        (List.init n (fun i -> i)))

let prop_random_rdag_acyclic_connected =
  let open QCheck in
  Test.make ~name:"random rdag is always valid (make validates)" ~count:50
    (int_range 2 60)
    (fun n ->
      let rng = Rng.create (n * 31) in
      let g, _ = Quilt_dag.Gen.random_rdag rng ~n () in
      (* topo_order raises on cycles; make already validated reachability. *)
      List.length (Callgraph.topo_order g) = n)

let suite =
  [
    ( "dag.callgraph",
      [
        Alcotest.test_case "make valid" `Quick test_make_valid;
        Alcotest.test_case "rejects cycle" `Quick test_make_rejects_cycle;
        Alcotest.test_case "rejects unreachable" `Quick test_make_rejects_unreachable;
        Alcotest.test_case "rejects bad ids" `Quick test_make_rejects_bad_ids;
        Alcotest.test_case "alpha" `Quick test_alpha_ceiling;
        Alcotest.test_case "alpha rounds up" `Quick test_alpha_rounds_up;
        Alcotest.test_case "topo order" `Quick test_topo_order;
        Alcotest.test_case "descendant sets" `Quick test_descendant_sets;
        Alcotest.test_case "weighted in-degree" `Quick test_weighted_in_degree;
        Alcotest.test_case "find node" `Quick test_find_node;
        Alcotest.test_case "to_dot" `Quick test_to_dot_contains_nodes;
        QCheck_alcotest.to_alcotest prop_adjacency_matches_edge_list;
        QCheck_alcotest.to_alcotest prop_descendants_match_naive_dfs;
      ] );
    ( "dag.gen",
      [
        Alcotest.test_case "line graph" `Quick test_line_graph;
        Alcotest.test_case "diamond" `Quick test_diamond;
        Alcotest.test_case "random rdag properties" `Quick test_random_rdag_properties;
        Alcotest.test_case "random rdag needs 2 containers" `Quick test_random_rdag_needs_two_containers;
        QCheck_alcotest.to_alcotest prop_random_rdag_acyclic_connected;
      ] );
  ]
