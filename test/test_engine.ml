(* Focused unit tests for the simulator's mechanics: processor-sharing CPU,
   CFS throttling of long bursts, cold-start composition, container reuse
   and specialization, routing, and the load generators' accounting.  Also
   covers the tracing builder's aggregation details. *)

module Engine = Quilt_platform.Engine
module Loadgen = Quilt_platform.Loadgen
module Params = Quilt_platform.Params
module Trace = Quilt_tracing.Trace
module Builder = Quilt_tracing.Builder
module Callgraph = Quilt_dag.Callgraph
module Workflow = Quilt_apps.Workflow
module Special = Quilt_apps.Special
module Quilt = Quilt_core.Quilt
module Ast = Quilt_lang.Ast

(* A configurable single function: the request selects the work. *)
let dial_fn =
  {
    Ast.fn_name = "dial";
    fn_lang = "rust";
    mergeable = true;
    body =
      Ast.Seq
        ( Ast.Burn (Ast.Json_get_int (Ast.Var "req", "cpu")),
          Ast.Seq
            ( Ast.Sleep_io (Ast.Json_get_int (Ast.Var "req", "io")),
              Ast.Seq
                (Ast.Use_mem (Ast.Json_get_int (Ast.Var "req", "mem")), Ast.Json_empty) ) );
  }

let dial_wf =
  {
    Workflow.wf_name = "dial";
    entry = "dial";
    functions = [ dial_fn ];
    gen_req = (fun _ -> "{\"cpu\":1000,\"io\":0,\"mem\":0}");
    code_edges = [];
  }

let deploy_dial ?(vcpus = 2.0) ?(mem_limit = 128.0) ?(max_scale = 10) engine =
  Engine.deploy engine
    {
      Engine.service = "dial";
      vcpus;
      mem_limit_mb = mem_limit;
      base_mem_mb = 8.0;
      image_mb = 30.0;
      max_scale;
      eager_http = false;
      mode = Engine.Plain;
    }

let fresh_dial ?vcpus ?mem_limit ?max_scale () =
  let engine = Engine.create ~registry:(Workflow.registry [ dial_wf ]) () in
  deploy_dial ?vcpus ?mem_limit ?max_scale engine;
  engine

let req ~cpu ~io ~mem = Printf.sprintf "{\"cpu\":%d,\"io\":%d,\"mem\":%d}" cpu io mem

let run_n engine reqs =
  (* Submits all requests at t=now, returns latencies in submission order. *)
  let results = Array.make (List.length reqs) (0.0, false) in
  List.iteri
    (fun i r ->
      Engine.submit engine ~entry:"dial" ~req:r ~on_done:(fun ~latency_us ~ok ->
          results.(i) <- (latency_us, ok)))
    reqs;
  Engine.drain engine;
  Array.to_list results

let warm engine = ignore (run_n engine [ req ~cpu:1 ~io:0 ~mem:0 ])

(* --- CPU model --- *)

let test_ps_sharing_two_tasks_one_core () =
  let engine = fresh_dial ~vcpus:1.0 () in
  warm engine;
  (* One 10ms task alone takes ~10ms + overheads... *)
  let solo =
    match run_n engine [ req ~cpu:10_000 ~io:0 ~mem:0 ] with
    | [ (l, true) ] -> l
    | _ -> Alcotest.fail "solo failed"
  in
  (* ...two submitted together on a 1-vCPU container share it.  The second
     request lands on a second container only if the first rejects — with
     cpu-based acceptance at threshold 0.8 and 1 vCPU, slots = 1, so the
     second waits or cold starts.  Use a 2-vCPU container to host both. *)
  let engine2 = fresh_dial ~vcpus:2.0 () in
  warm engine2;
  let both = run_n engine2 [ req ~cpu:10_000 ~io:0 ~mem:0; req ~cpu:10_000 ~io:0 ~mem:0 ] in
  List.iter
    (fun (l, ok) ->
      Alcotest.(check bool) "ok" true ok;
      (* Two tasks, two vCPUs: no slowdown; latency close to solo. *)
      Alcotest.(check bool) "parallel on 2 vCPUs" true (Float.abs (l -. solo) < 2_000.0))
    both

(* io-first then a long burst: concurrent requests are admitted while
   sleeping (zero CPU), then burst together — the over-subscription that
   triggers CFS throttling. *)
let burst_fn =
  {
    Ast.fn_name = "burst";
    fn_lang = "rust";
    mergeable = true;
    body =
      Ast.Seq
        ( Ast.Sleep_io (Ast.Json_get_int (Ast.Var "req", "io")),
          Ast.Seq (Ast.Burn (Ast.Json_get_int (Ast.Var "req", "cpu")), Ast.Json_empty) );
  }

let burst_wf =
  {
    Workflow.wf_name = "burst";
    entry = "burst";
    functions = [ burst_fn ];
    gen_req = (fun _ -> "{\"io\":0,\"cpu\":1000}");
    code_edges = [];
  }

let test_cfs_throttle_applies_to_long_bursts () =
  let fresh_burst ~vcpus ~max_scale =
    let engine = Engine.create ~registry:(Workflow.registry [ burst_wf ]) () in
    Engine.deploy engine
      {
        Engine.service = "burst";
        vcpus;
        mem_limit_mb = 128.0;
        base_mem_mb = 8.0;
        image_mb = 30.0;
        max_scale;
        eager_http = false;
        mode = Engine.Plain;
      };
    engine
  in
  let run_burst engine reqs =
    let results = Array.make (List.length reqs) (0.0, false) in
    List.iteri
      (fun i r ->
        Engine.submit engine ~entry:"burst" ~req:r ~on_done:(fun ~latency_us ~ok ->
            results.(i) <- (latency_us, ok)))
      reqs;
    Engine.drain engine;
    Array.to_list results
  in
  let breq ~io ~cpu = Printf.sprintf "{\"io\":%d,\"cpu\":%d}" io cpu in
  let engine = fresh_burst ~vcpus:2.0 ~max_scale:1 in
  ignore (run_burst engine [ breq ~io:0 ~cpu:1 ]);
  let solo =
    match run_burst engine [ breq ~io:0 ~cpu:40_000 ] with
    | [ (l, true) ] -> l
    | _ -> Alcotest.fail "solo failed"
  in
  (* Six requests admitted during their 30ms sleeps, bursting together:
     6 > 2 + 0.9, so each long seg runs below its fair share. *)
  let six = run_burst engine (List.init 6 (fun _ -> breq ~io:30_000 ~cpu:40_000)) in
  let max_lat = List.fold_left (fun acc (l, _) -> Float.max acc l) 0.0 six in
  let fair_share = (6.0 *. 40_000.0 /. 2.0) +. 30_000.0 +. 5_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "throttled beyond fair share (solo %.1fms, loaded %.1fms)" (solo /. 1000.0)
       (max_lat /. 1000.0))
    true
    (max_lat > fair_share)

let test_io_does_not_consume_cpu () =
  let engine = fresh_dial ~vcpus:1.0 ~max_scale:1 () in
  warm engine;
  (* Many concurrent sleepers on one 1-vCPU container: latency stays ~io. *)
  let rs = run_n engine (List.init 8 (fun _ -> req ~cpu:100 ~io:20_000 ~mem:0)) in
  List.iter
    (fun (l, ok) ->
      Alcotest.(check bool) "ok" true ok;
      Alcotest.(check bool) "sleepers overlap" true (l < 40_000.0))
    rs

(* --- Cold start composition --- *)

let test_cold_start_scales_with_image () =
  let latency_for image_mb eager =
    let engine = Engine.create ~registry:(Workflow.registry [ dial_wf ]) () in
    Engine.deploy engine
      {
        Engine.service = "dial";
        vcpus = 2.0;
        mem_limit_mb = 128.0;
        base_mem_mb = 8.0;
        image_mb;
        max_scale = 10;
        eager_http = eager;
        mode = Engine.Plain;
      };
    match run_n engine [ req ~cpu:0 ~io:0 ~mem:0 ] with
    | [ (l, true) ] -> l
    | _ -> Alcotest.fail "request failed"
  in
  let small = latency_for 10.0 false in
  let big = latency_for 60.0 false in
  let prm = Params.default in
  Alcotest.(check bool) "bigger image, slower cold start" true (big > small);
  Alcotest.(check (float 1.0)) "pull-time difference" (50.0 *. prm.Params.cold_start_pull_us_per_mb)
    (big -. small);
  (* Eager HTTP loading adds the shared-library time. *)
  let eager = latency_for 10.0 true in
  Alcotest.(check (float 1.0)) "http stack load" prm.Params.http_stack_load_us (eager -. small)

let test_rolling_update_is_seamless () =
  let engine = fresh_dial () in
  warm engine;
  (* A plain re-deploy forces the next request through a cold start... *)
  let cold_engine = fresh_dial () in
  warm cold_engine;
  deploy_dial cold_engine;
  let lat_cold, _ = (match run_n cold_engine [ req ~cpu:0 ~io:0 ~mem:0 ] with [ r ] -> r | _ -> assert false) in
  Alcotest.(check bool) "plain replace cold starts" true (lat_cold > 100_000.0);
  (* ...while a rolling update keeps serving warm from the old version. *)
  Engine.deploy_rolling engine
    {
      Engine.service = "dial";
      vcpus = 2.0;
      mem_limit_mb = 128.0;
      base_mem_mb = 9.0;
      image_mb = 40.0;
      max_scale = 10;
      eager_http = false;
      mode = Engine.Plain;
    };
  let lat_during, ok = (match run_n engine [ req ~cpu:0 ~io:0 ~mem:0 ] with [ r ] -> r | _ -> assert false) in
  Alcotest.(check bool) "served during the update" true ok;
  Alcotest.(check bool) "no cold start visible to clients" true (lat_during < 10_000.0);
  (* After the new container is up the route has flipped; requests still
     work and the background start was the only extra cold start. *)
  Engine.run_until engine (Engine.now engine +. 2_000_000.0);
  let lat_after, ok2 = (match run_n engine [ req ~cpu:0 ~io:0 ~mem:0 ] with [ r ] -> r | _ -> assert false) in
  Alcotest.(check bool) "served after the flip" true ok2;
  Alcotest.(check bool) "warm after the flip" true (lat_after < 10_000.0)

let test_replacing_deployment_resets_pool () =
  let engine = fresh_dial () in
  warm engine;
  Alcotest.(check int) "one container" 1 (Engine.pool_size engine "dial");
  (* A function update (§5.5) replaces the deployment; the pool restarts. *)
  deploy_dial engine;
  Alcotest.(check int) "fresh pool" 0 (Engine.pool_size engine "dial");
  let ok = match run_n engine [ req ~cpu:0 ~io:0 ~mem:0 ] with [ (_, ok) ] -> ok | _ -> false in
  Alcotest.(check bool) "works after update" true ok;
  Alcotest.(check bool) "cold started again" true ((Engine.counters engine).Engine.cold_starts >= 2)

(* --- Memory accounting --- *)

let test_total_base_mem_tracks_pools () =
  let engine = fresh_dial () in
  Alcotest.(check (float 0.01)) "empty" 0.0 (Engine.total_base_mem_mb engine);
  warm engine;
  Alcotest.(check bool) "one container resident" true (Engine.total_base_mem_mb engine >= 8.0)

let test_workspace_released_after_request () =
  let engine = fresh_dial () in
  warm engine;
  ignore (run_n engine [ req ~cpu:0 ~io:0 ~mem:50 ]);
  (* After completion the 50 MB workspace is gone: only base remains. *)
  Alcotest.(check bool) "workspace released" true (Engine.total_base_mem_mb engine < 10.0)

(* --- Load generators --- *)

let test_closed_loop_counts () =
  let engine = fresh_dial () in
  let r =
    Loadgen.run_closed_loop engine ~entry:"dial"
      ~gen_req:(fun _ -> req ~cpu:1_000 ~io:0 ~mem:0)
      ~connections:2 ~duration_us:2_000_000.0 ~warmup_us:500_000.0 ()
  in
  Alcotest.(check int) "no failures" 0 r.Loadgen.failures;
  Alcotest.(check bool) "kept both connections busy" true (r.Loadgen.successes > 100);
  Alcotest.(check int) "offered = completed for closed loop" r.Loadgen.offered r.Loadgen.successes

let test_closed_loop_think_time () =
  let engine = fresh_dial () in
  let r =
    Loadgen.run_closed_loop engine ~entry:"dial"
      ~gen_req:(fun _ -> req ~cpu:0 ~io:0 ~mem:0)
      ~connections:1 ~duration_us:2_000_000.0 ~warmup_us:0.0 ~think_us:100_000.0 ()
  in
  (* ~1 request per 100ms+latency. *)
  Alcotest.(check bool) "think time paces the connection" true (r.Loadgen.successes <= 22)

let test_open_loop_rate_respected () =
  let engine = fresh_dial () in
  let r =
    Loadgen.run_open_loop engine ~entry:"dial"
      ~gen_req:(fun _ -> req ~cpu:100 ~io:0 ~mem:0)
      ~rate_rps:100.0 ~duration_us:5_000_000.0 ~warmup_us:1_000_000.0 ()
  in
  Alcotest.(check bool) "offered close to rate x duration" true
    (abs (r.Loadgen.offered - 500) < 90);
  Alcotest.(check bool) "all served at low load" true
    (float_of_int r.Loadgen.successes > 0.95 *. float_of_int r.Loadgen.offered)

let test_simulation_is_deterministic () =
  let run () =
    let wfs = Quilt_apps.Deathstar.social_network ~async:false () in
    let compose = List.find (fun w -> w.Workflow.wf_name = "compose-post") wfs in
    let engine = Quilt.fresh_platform ~seed:11 ~workflows:[ compose ] () in
    let r =
      Loadgen.run_open_loop engine ~entry:"compose-post" ~gen_req:compose.Workflow.gen_req
        ~rate_rps:120.0 ~duration_us:3_000_000.0 ~warmup_us:1_000_000.0 ()
    in
    (r.Loadgen.successes, r.Loadgen.offered, Loadgen.median_ms r, (Engine.counters engine).Engine.cold_starts)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical reruns" true (a = b)

(* The Legacy_heap scheduler IS the seed event queue (a faithful copy);
   an entire simulation must come out bit-identical on either scheduler:
   same completions, same latency distribution (exact float equality),
   same virtual clock, same counters.  This is the engine-level face of
   the sched.parity qcheck harness. *)
let test_wheel_and_legacy_heap_bit_identical () =
  let module Rng = Quilt_util.Rng in
  let run sched =
    let engine = Engine.create ~sched ~registry:(Workflow.registry [ dial_wf ]) () in
    deploy_dial ~vcpus:1.0 ~max_scale:4 engine;
    let r =
      Loadgen.run_open_loop engine ~entry:"dial"
        ~gen_req:(fun rng ->
          req ~cpu:(200 + Rng.int rng 3000) ~io:(Rng.int rng 5000) ~mem:(Rng.int rng 8))
        ~rate_rps:400.0 ~duration_us:4_000_000.0 ()
    in
    ( ( r.Loadgen.successes,
        r.Loadgen.failures,
        r.Loadgen.offered,
        r.Loadgen.throughput_rps ),
      (Loadgen.median_ms r, Loadgen.p99_ms r, Loadgen.mean_ms r),
      Engine.counters engine,
      Engine.now engine )
  in
  let a = run Quilt_platform.Sched.Wheel in
  let b = run Quilt_platform.Sched.Legacy_heap in
  Alcotest.(check bool) "bit-identical across schedulers" true (a = b)

(* Same property through the full optimize/apply path: a merged deployment
   (guards, local calls, per-member monitors) behaves identically on both
   schedulers and across reruns of the same seed. *)
let test_sched_parity_through_merge_path () =
  let run sched =
    let wfs = Quilt_apps.Deathstar.social_network ~async:false () in
    let compose = List.find (fun w -> w.Workflow.wf_name = "compose-post") wfs in
    let engine = Quilt.fresh_platform ~seed:23 ~sched ~workflows:[ compose ] () in
    let r =
      Loadgen.run_open_loop engine ~entry:"compose-post" ~gen_req:compose.Workflow.gen_req
        ~rate_rps:150.0 ~duration_us:3_000_000.0 ~warmup_us:500_000.0 ()
    in
    ( r.Loadgen.successes,
      r.Loadgen.offered,
      Loadgen.median_ms r,
      Loadgen.p99_ms r,
      Engine.counters engine,
      Engine.now engine )
  in
  let a = run Quilt_platform.Sched.Wheel in
  let b = run Quilt_platform.Sched.Legacy_heap in
  Alcotest.(check bool) "merge path bit-identical across schedulers" true (a = b)

(* The process-wide scheduler stats are atomics because bench fan-outs
   drive engines from a Domain pool.  Whatever the interleaving of the
   per-engine syncs, the global totals must come out exactly additive
   (events) and max-combining (peak depth) — a lost update would show up
   as a shortfall against the per-engine counters. *)
let test_global_stats_race_free_under_domains () =
  let module Pool = Quilt_util.Pool in
  let module Rng = Quilt_util.Rng in
  Engine.reset_global_stats ();
  Alcotest.(check (pair int int)) "reset zeroes both" (0, 0) (Engine.global_stats ());
  let run seed =
    let engine = Engine.create ~seed ~registry:(Workflow.registry [ dial_wf ]) () in
    deploy_dial engine;
    let _ =
      Loadgen.run_open_loop engine ~entry:"dial"
        ~gen_req:(fun rng ->
          req ~cpu:(100 + Rng.int rng 400) ~io:(Rng.int rng 3000) ~mem:0)
        ~rate_rps:300.0 ~duration_us:1_500_000.0 ~warmup_us:0.0 ()
    in
    (Engine.events_processed engine, Engine.peak_queue_depth engine)
  in
  let per = Pool.map ~domains:4 run [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let events, peak = Engine.global_stats () in
  let sum_events = List.fold_left (fun a (e, _) -> a + e) 0 per in
  let max_peak = List.fold_left (fun a (_, p) -> max a p) 0 per in
  Alcotest.(check bool) "engines did real work" true (sum_events > 0);
  Alcotest.(check int) "no update lost across domains: events add up" sum_events events;
  Alcotest.(check int) "peak depth is the max across engines" max_peak peak;
  (* Monotone under further work: one more engine adds exactly its own. *)
  let extra, _ = run 99 in
  let events', peak' = Engine.global_stats () in
  Alcotest.(check int) "strictly monotone" (events + extra) events';
  Alcotest.(check bool) "peak never decreases" true (peak' >= peak)

(* The cluster topology subsystem must be invisible until asked for: a
   [Topology.Flat] install — and even a degenerate one-node cluster tuned
   to the seed's constants — leaves a full simulation bit-identical to the
   untouched engine.  The engine-level face of the flat-parity claim in
   ISSUE's placement work, beside the scheduler-parity tests above. *)
let compose_fingerprint prepare =
  let wfs = Quilt_apps.Deathstar.social_network ~async:false () in
  let compose = List.find (fun w -> w.Workflow.wf_name = "compose-post") wfs in
  let engine = Quilt.fresh_platform ~seed:11 ~workflows:[ compose ] () in
  prepare engine;
  let r =
    Loadgen.run_open_loop engine ~entry:"compose-post" ~gen_req:compose.Workflow.gen_req
      ~rate_rps:120.0 ~duration_us:3_000_000.0 ~warmup_us:1_000_000.0 ()
  in
  ( (r.Loadgen.successes, r.Loadgen.failures, r.Loadgen.offered),
    (Loadgen.median_ms r, Loadgen.p99_ms r, Loadgen.mean_ms r),
    Engine.counters engine,
    Engine.now engine )

let test_flat_topology_bit_identical () =
  let seed = compose_fingerprint (fun _ -> ()) in
  let flat =
    compose_fingerprint (fun e -> Engine.set_topology e Quilt_place.Topology.flat)
  in
  Alcotest.(check bool) "Topology.flat = untouched engine, bit-identical" true (seed = flat)

let test_degenerate_cluster_matches_seed () =
  (* One effectively-unbounded node, image cache off, same-node RTT pinned
     to the seed's flat 200 µs: the cluster code paths all run (hops are
     classified, capacity is reserved) yet every latency and counter must
     equal the seed's — the node model prices, it never distorts. *)
  let seed = compose_fingerprint (fun _ -> ()) in
  let one_node =
    Quilt_place.Topology.make ~rtt_same_node_us:Params.default.Params.rtt_us
      ~image_cache:false
      [ Quilt_place.Topology.node ~rack:0 ~vcpus:1e9 ~mem_mb:1e12 () ]
  in
  let degenerate = compose_fingerprint (fun e -> Engine.set_topology e one_node) in
  Alcotest.(check bool) "one fat node at 200us = seed engine, bit-identical" true
    (seed = degenerate)

(* --- Tracing builder details --- *)

let test_builder_async_edge_kind () =
  let store = Trace.create () in
  Trace.record_span store { Trace.ts = 0.0; caller = None; callee = "root"; kind = Trace.Sync };
  Trace.record_span store { Trace.ts = 1.0; caller = Some "root"; callee = "w"; kind = Trace.Async };
  Trace.record_span store { Trace.ts = 2.0; caller = Some "root"; callee = "w"; kind = Trace.Async };
  match Builder.build store ~entry:"root" () with
  | Error e -> Alcotest.fail e
  | Ok g ->
      Alcotest.(check int) "two vertices" 2 (Callgraph.n_nodes g);
      (match g.Callgraph.edges with
      | [ e ] ->
          Alcotest.(check int) "weight 2" 2 e.Callgraph.weight;
          Alcotest.(check bool) "async kind" true (e.Callgraph.kind = Callgraph.Async);
          Alcotest.(check int) "alpha = ceil(2/1)" 2 (Callgraph.alpha g e)
      | _ -> Alcotest.fail "expected one edge")

let test_builder_window_filter () =
  let store = Trace.create () in
  Trace.record_span store { Trace.ts = 0.0; caller = None; callee = "root"; kind = Trace.Sync };
  Trace.record_span store { Trace.ts = 5.0; caller = Some "root"; callee = "old"; kind = Trace.Sync };
  Trace.record_span store { Trace.ts = 100.0; caller = None; callee = "root"; kind = Trace.Sync };
  Trace.record_span store { Trace.ts = 105.0; caller = Some "root"; callee = "new"; kind = Trace.Sync };
  match Builder.build store ~entry:"root" ~window_start:50.0 () with
  | Error e -> Alcotest.fail e
  | Ok g ->
      Alcotest.(check bool) "old edge excluded" true (Callgraph.find_node g "old" = None);
      Alcotest.(check bool) "new edge included" true (Callgraph.find_node g "new" <> None);
      Alcotest.(check int) "N counts only windowed invocations" 1 g.Callgraph.invocations

let test_builder_aggregates_containers () =
  let store = Trace.create () in
  Trace.record_span store { Trace.ts = 0.0; caller = None; callee = "root"; kind = Trace.Sync };
  (* Two containers of the same function: cumulative CPU sums; memory takes
     the peak. *)
  Trace.record_resource store
    { Trace.rs_ts = 1.0; container = 1; fn = "root"; cpu_us_cum = 4_000.0; mem_mb = 12.0; invocations_cum = 2 };
  Trace.record_resource store
    { Trace.rs_ts = 2.0; container = 2; fn = "root"; cpu_us_cum = 2_000.0; mem_mb = 20.0; invocations_cum = 1 };
  match Builder.build store ~entry:"root" () with
  | Error e -> Alcotest.fail e
  | Ok g ->
      let n = Callgraph.node g g.Callgraph.root in
      (* (4000 + 2000) us over 3 invocations = 2 ms per invocation. *)
      Alcotest.(check (float 1e-6)) "avg cpu" 2.0 n.Callgraph.cpu;
      Alcotest.(check (float 1e-6)) "peak mem" 20.0 n.Callgraph.mem_mb

let test_builder_requires_invocations () =
  let store = Trace.create () in
  match Builder.build store ~entry:"ghost" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error for empty window"

let test_known_calls_adds_missing_edges () =
  let store = Trace.create () in
  Trace.record_span store { Trace.ts = 0.0; caller = None; callee = "root"; kind = Trace.Sync };
  Trace.record_span store { Trace.ts = 1.0; caller = Some "root"; callee = "seen"; kind = Trace.Sync };
  Trace.record_span store { Trace.ts = 2.0; caller = Some "seen"; callee = "shared"; kind = Trace.Sync };
  match Builder.build store ~entry:"root" () with
  | Error e -> Alcotest.fail e
  | Ok g ->
      (* The code also has root -> shared, unobserved in this window. *)
      let g' = Builder.known_calls ~code_edges:[ ("root", "shared", Callgraph.Sync) ] g in
      Alcotest.(check int) "edge added" (List.length g.Callgraph.edges + 1) (List.length g'.Callgraph.edges);
      let added =
        List.find
          (fun (e : Callgraph.edge) ->
            (Callgraph.node g' e.Callgraph.src).Callgraph.name = "root"
            && (Callgraph.node g' e.Callgraph.dst).Callgraph.name = "shared")
          g'.Callgraph.edges
      in
      Alcotest.(check int) "dashed edges carry weight 0" 0 added.Callgraph.weight;
      (* Idempotent for edges already present. *)
      let g'' = Builder.known_calls ~code_edges:[ ("root", "seen", Callgraph.Sync) ] g' in
      Alcotest.(check int) "no duplicate" (List.length g'.Callgraph.edges) (List.length g''.Callgraph.edges)

(* --- failure accounting --- *)

(* An allocation past the limit kills the container; the request that
   caused it is delivered exactly one failure, and the pool recovers. *)
let test_oom_on_use_mem () =
  let engine = fresh_dial ~mem_limit:64.0 () in
  warm engine;
  let count = ref 0 and last_ok = ref true in
  Engine.submit engine ~entry:"dial" ~req:(req ~cpu:0 ~io:0 ~mem:200) ~on_done:(fun ~latency_us:_ ~ok ->
      incr count;
      last_ok := ok);
  Engine.drain engine;
  Alcotest.(check int) "delivered exactly once" 1 !count;
  Alcotest.(check bool) "as a failure" false !last_ok;
  let c = Engine.counters engine in
  Alcotest.(check int) "oom counted" 1 c.Engine.oom_kills;
  Alcotest.(check int) "failure counted once" 1 c.Engine.failed;
  let results = run_n engine [ req ~cpu:1000 ~io:0 ~mem:0 ] in
  Alcotest.(check bool) "replacement container serves again" true (snd (List.hd results))

(* An OOM with several requests in flight on the same container: every one
   of them fails exactly once, and events the dead container left behind
   (io wake-ups, the spike's release) must not touch its replacement. *)
let test_oom_fails_each_inflight_once () =
  let engine = fresh_dial ~mem_limit:64.0 ~max_scale:1 () in
  warm engine;
  let n = 4 in
  let deliveries = Array.make n 0 in
  let oks = Array.make n true in
  for i = 0 to n - 1 do
    Engine.submit engine ~entry:"dial" ~req:(req ~cpu:0 ~io:200_000 ~mem:0)
      ~on_done:(fun ~latency_us:_ ~ok ->
        deliveries.(i) <- deliveries.(i) + 1;
        oks.(i) <- ok)
  done;
  Engine.run_until engine (Engine.now engine +. 50_000.0);
  let spiked, oomed = Engine.mem_spike engine ~fn:"dial" ~mb:500.0 ~duration_us:10_000.0 in
  Alcotest.(check int) "the one container was spiked" 1 spiked;
  Alcotest.(check int) "and OOMed" 1 oomed;
  Engine.drain engine;
  Array.iteri
    (fun i d -> Alcotest.(check int) (Printf.sprintf "request %d delivered exactly once" i) 1 d)
    deliveries;
  Array.iteri (fun i ok -> Alcotest.(check bool) (Printf.sprintf "request %d failed" i) false ok) oks;
  let c = Engine.counters engine in
  Alcotest.(check int) "one oom kill" 1 c.Engine.oom_kills;
  Alcotest.(check int) "every in-flight request failed once" n c.Engine.failed;
  Alcotest.(check int) "only the warm-up completed" 1 c.Engine.completed;
  let results = run_n engine [ req ~cpu:1000 ~io:0 ~mem:0 ] in
  Alcotest.(check bool) "fresh container serves after the kill" true (snd (List.hd results));
  Alcotest.(check int) "no stale failures from the dead container" n (Engine.counters engine).Engine.failed

let suite =
  [
    ( "engine.cpu",
      [
        Alcotest.test_case "ps sharing" `Quick test_ps_sharing_two_tasks_one_core;
        Alcotest.test_case "cfs throttle on long bursts" `Quick test_cfs_throttle_applies_to_long_bursts;
        Alcotest.test_case "io is not cpu" `Quick test_io_does_not_consume_cpu;
      ] );
    ( "engine.lifecycle",
      [
        Alcotest.test_case "cold start composition" `Quick test_cold_start_scales_with_image;
        Alcotest.test_case "function update resets pool" `Quick test_replacing_deployment_resets_pool;
        Alcotest.test_case "rolling update seamless (5.5)" `Quick test_rolling_update_is_seamless;
        Alcotest.test_case "total base mem" `Quick test_total_base_mem_tracks_pools;
        Alcotest.test_case "workspace released" `Quick test_workspace_released_after_request;
      ] );
    ( "engine.loadgen",
      [
        Alcotest.test_case "closed loop counts" `Quick test_closed_loop_counts;
        Alcotest.test_case "think time" `Quick test_closed_loop_think_time;
        Alcotest.test_case "open loop rate" `Quick test_open_loop_rate_respected;
        Alcotest.test_case "deterministic" `Quick test_simulation_is_deterministic;
      ] );
    ( "engine.sched",
      [
        Alcotest.test_case "wheel = legacy heap, bit-identical" `Quick
          test_wheel_and_legacy_heap_bit_identical;
        Alcotest.test_case "parity through merge path" `Quick test_sched_parity_through_merge_path;
        Alcotest.test_case "global stats race-free across domains" `Quick
          test_global_stats_race_free_under_domains;
      ] );
    ( "engine.topology",
      [
        Alcotest.test_case "flat topology = seed, bit-identical" `Quick
          test_flat_topology_bit_identical;
        Alcotest.test_case "degenerate 1-node cluster = seed" `Quick
          test_degenerate_cluster_matches_seed;
      ] );
    ( "engine.failures",
      [
        Alcotest.test_case "oom delivered exactly once" `Quick test_oom_on_use_mem;
        Alcotest.test_case "oom fails all in-flight once" `Quick test_oom_fails_each_inflight_once;
      ] );
    ( "tracing.builder",
      [
        Alcotest.test_case "async edge kind" `Quick test_builder_async_edge_kind;
        Alcotest.test_case "window filter" `Quick test_builder_window_filter;
        Alcotest.test_case "container aggregation" `Quick test_builder_aggregates_containers;
        Alcotest.test_case "requires invocations" `Quick test_builder_requires_invocations;
        Alcotest.test_case "known calls" `Quick test_known_calls_adds_missing_edges;
      ] );
  ]
