(* Tests for quilt_merge: the full Figure-5 pipeline.  The headline
   properties:
   - a merged workflow computes exactly what the unmerged workflow computes
     (same- and cross-language);
   - after merging, member-internal invocations never touch the network and
     the HTTP stack is not loaded;
   - §5.6 conditional invocations go local up to the profiled α and remote
     beyond it;
   - DCE shrinks the module and Appendix-E size relations hold. *)

open Quilt_lang
module Ir = Quilt_ir.Ir
module Interp = Quilt_ir.Interp
module Pipeline = Quilt_merge.Pipeline
module Sizes = Quilt_merge.Sizes
module Json = Quilt_util.Json

(* A three-function workflow: front -> middle -> leaf, with front also
   calling leaf directly. *)
let leaf lang =
  {
    Ast.fn_name = "leaf";
    fn_lang = lang;
    mergeable = true;
    body =
      Ast.Let
        ( "x",
          Ast.Json_get_int (Ast.Var "req", "x"),
          Ast.Json_set_int (Ast.Json_empty, "y", Ast.Arith (Ast.Mul, Ast.Var "x", Ast.Int_lit 3)) );
  }

let middle lang =
  {
    Ast.fn_name = "middle";
    fn_lang = lang;
    mergeable = true;
    body =
      Ast.Let
        ( "r",
          Ast.Invoke ("leaf", Ast.Json_set_int (Ast.Json_empty, "x", Ast.Json_get_int (Ast.Var "req", "x"))),
          Ast.Json_set_int
            (Ast.Json_empty, "z", Ast.Arith (Ast.Add, Ast.Json_get_int (Ast.Var "r", "y"), Ast.Int_lit 1)) );
  }

let front lang =
  {
    Ast.fn_name = "front";
    fn_lang = lang;
    mergeable = true;
    body =
      Ast.Let
        ( "m",
          Ast.Invoke ("middle", Ast.Json_set_int (Ast.Json_empty, "x", Ast.Json_get_int (Ast.Var "req", "x"))),
          Ast.Let
            ( "l",
              Ast.Invoke ("leaf", Ast.Json_set_int (Ast.Json_empty, "x", Ast.Int_lit 10)),
              Ast.Json_set_int
                ( Ast.Json_set_int (Ast.Json_empty, "mz", Ast.Json_get_int (Ast.Var "m", "z")),
                  "ly",
                  Ast.Json_get_int (Ast.Var "l", "y") ) ) );
  }

let fan_out lang ~callee =
  {
    Ast.fn_name = "fan-out";
    fn_lang = lang;
    mergeable = true;
    body =
      Ast.Let
        ( "n",
          Ast.Json_get_int (Ast.Var "req", "num"),
          Ast.Json_set_str
            ( Ast.Json_empty,
              "all",
              Ast.For_acc
                {
                  var = "i";
                  from_ = Ast.Int_lit 0;
                  to_ = Ast.Var "n";
                  acc = "out";
                  init = Ast.Str_lit "";
                  body =
                    Ast.Let
                      ( "f",
                        Ast.Invoke_async (callee, Ast.Json_set_int (Ast.Json_empty, "x", Ast.Var "i")),
                        Ast.Let
                          ( "r",
                            Ast.Wait (Ast.Var "f"),
                            Ast.Concat
                              (Ast.Var "out", Ast.Concat (Ast.Itoa (Ast.Json_get_int (Ast.Var "r", "y")), Ast.Str_lit ",")) ) );
                } ) );
  }

let lookup_for fns svc =
  match List.find_opt (fun f -> f.Ast.fn_name = svc) fns with
  | Some f -> f
  | None -> Alcotest.fail ("no such function " ^ svc)

(* Reference: evaluate the workflow with Eval, recursively. *)
let rec reference fns svc req =
  let fn = lookup_for fns svc in
  let invoke ~kind:_ ~name ~req = fst (reference fns name req) in
  Eval.run ~invoke fn ~req

let merge fns ~members ~root ?edge_mode () =
  Pipeline.merge_group ~lookup:(lookup_for fns) ~members ~root ?edge_mode ()

let run_merged report ~root ~req ~host =
  match
    Interp.run_handler ~host report.Pipeline.merged_module ~fname:(Pipeline.entry_handler root) ~req
  with
  | Ok (res, stats) -> (res, stats)
  | Error e -> Alcotest.fail ("merged module failed: " ^ e)

let test_merge_two_same_language () =
  let fns = [ front "rust"; middle "rust"; leaf "rust" ] in
  let report = merge fns ~members:[ "middle"; "leaf" ] ~root:"middle" () in
  let expected, _ = reference fns "middle" "{\"x\":5}" in
  let got, stats = run_merged report ~root:"middle" ~req:"{\"x\":5}" ~host:Interp.null_host in
  Alcotest.(check string) "same output" expected got;
  Alcotest.(check int) "no remote calls" 0 (List.length stats.Interp.remote_sync);
  Alcotest.(check bool) "HTTP stack never loaded" false stats.Interp.curl_loaded

let test_merge_three_with_shared_callee () =
  (* leaf is called by both front and middle — §5.4's compose-and-upload
     situation: merged once, reused. *)
  let fns = [ front "rust"; middle "rust"; leaf "rust" ] in
  let report = merge fns ~members:[ "front"; "middle"; "leaf" ] ~root:"front" () in
  let expected, _ = reference fns "front" "{\"x\":4}" in
  let got, stats = run_merged report ~root:"front" ~req:"{\"x\":4}" ~host:Interp.null_host in
  Alcotest.(check string) "same output" expected got;
  Alcotest.(check bool) "HTTP stack never loaded" false stats.Interp.curl_loaded;
  (* Both call sites of leaf were rewritten: one in front's handler and one
     in middle — where the site appears in both middle's (dead, pre-DCE)
     handler and its localized clone, so three rewrites happen. *)
  let leaf_sites = List.assoc "leaf" report.Pipeline.rounds in
  Alcotest.(check int) "leaf sites rewritten" 3 leaf_sites

let cross_language_pairs =
  [ ("rust", "go"); ("c", "swift"); ("cpp", "rust"); ("go", "c"); ("swift", "cpp"); ("rust", "swift") ]

let test_merge_cross_language () =
  List.iter
    (fun (l1, l2) ->
      let fns = [ front l1; middle l2; leaf l1 ] in
      let report = merge fns ~members:[ "front"; "middle"; "leaf" ] ~root:"front" () in
      Alcotest.(check (list string))
        (Printf.sprintf "%s+%s languages recorded" l1 l2)
        (List.sort_uniq compare [ l1; l2 ])
        report.Pipeline.languages;
      let expected, _ = reference fns "front" "{\"x\":7}" in
      let got, stats = run_merged report ~root:"front" ~req:"{\"x\":7}" ~host:Interp.null_host in
      Alcotest.(check string) (Printf.sprintf "%s calls %s" l1 l2) expected got;
      Alcotest.(check int) "no remote" 0 (List.length stats.Interp.remote_sync))
    cross_language_pairs

let test_merge_all_five_languages () =
  (* A chain across all five languages in one process. *)
  let chain =
    [
      ("f0", "c", Some "f1");
      ("f1", "cpp", Some "f2");
      ("f2", "rust", Some "f3");
      ("f3", "go", Some "f4");
      ("f4", "swift", None);
    ]
  in
  let fns =
    List.map
      (fun (name, lang, next) ->
        let body =
          match next with
          | None ->
              Ast.Json_set_int
                (Ast.Json_empty, "v", Ast.Arith (Ast.Add, Ast.Json_get_int (Ast.Var "req", "v"), Ast.Int_lit 1))
          | Some callee ->
              Ast.Let
                ( "r",
                  Ast.Invoke
                    (callee, Ast.Json_set_int (Ast.Json_empty, "v", Ast.Json_get_int (Ast.Var "req", "v"))),
                  Ast.Json_set_int
                    (Ast.Json_empty, "v", Ast.Arith (Ast.Add, Ast.Json_get_int (Ast.Var "r", "v"), Ast.Int_lit 1)) )
        in
        { Ast.fn_name = name; fn_lang = lang; mergeable = true; body })
      chain
  in
  let members = List.map (fun f -> f.Ast.fn_name) fns in
  let report = merge fns ~members ~root:"f0" () in
  Alcotest.(check (list string)) "all five languages" [ "c"; "cpp"; "go"; "rust"; "swift" ]
    report.Pipeline.languages;
  let got, stats = run_merged report ~root:"f0" ~req:"{\"v\":0}" ~host:Interp.null_host in
  Alcotest.(check string) "five increments" "{\"v\":5}" got;
  Alcotest.(check bool) "no HTTP" false stats.Interp.curl_loaded

let test_merged_module_verifies_and_roundtrips () =
  let fns = [ front "rust"; middle "go"; leaf "swift" ] in
  let report = merge fns ~members:[ "front"; "middle"; "leaf" ] ~root:"front" () in
  let m = report.Pipeline.merged_module in
  Alcotest.(check int) "verifies" 0 (List.length (Quilt_ir.Verify.run m));
  let printed = Quilt_ir.Pp.to_string m in
  let reparsed = Quilt_ir.Parser.parse_module printed in
  Alcotest.(check string) "roundtrips" printed (Quilt_ir.Pp.to_string reparsed)

let test_merge_keeps_cut_edges_remote () =
  (* Merge only front+middle: the calls to leaf must stay remote. *)
  let fns = [ front "rust"; middle "rust"; leaf "rust" ] in
  let report = merge fns ~members:[ "front"; "middle" ] ~root:"front" () in
  let host =
    { Interp.invoke = (fun ~kind:_ ~name ~req -> fst (reference fns name req)) }
  in
  let expected, _ = reference fns "front" "{\"x\":2}" in
  let got, stats = run_merged report ~root:"front" ~req:"{\"x\":2}" ~host in
  Alcotest.(check string) "same output" expected got;
  Alcotest.(check int) "two remote leaf calls" 2 (List.length stats.Interp.remote_sync);
  List.iter
    (fun (callee, _) -> Alcotest.(check string) "remote target is leaf" "leaf" callee)
    stats.Interp.remote_sync;
  (* The HTTP stack was loaded lazily, only because a remote call happened. *)
  Alcotest.(check bool) "curl loaded" true stats.Interp.curl_loaded;
  Alcotest.(check bool) "but not eagerly" false stats.Interp.curl_loaded_eagerly

let test_merge_async_fan_out_unconditional () =
  let fns = [ fan_out "rust" ~callee:"leaf"; leaf "rust" ] in
  let report = merge fns ~members:[ "fan-out"; "leaf" ] ~root:"fan-out" () in
  let expected, _ = reference fns "fan-out" "{\"num\":5}" in
  let got, stats = run_merged report ~root:"fan-out" ~req:"{\"num\":5}" ~host:Interp.null_host in
  Alcotest.(check string) "fan-out output" expected got;
  Alcotest.(check int) "no remote async" 0 (List.length stats.Interp.remote_async)

let test_conditional_invocation_below_alpha () =
  let fns = [ fan_out "rust" ~callee:"leaf"; leaf "rust" ] in
  let report =
    merge fns ~members:[ "fan-out"; "leaf" ] ~root:"fan-out"
      ~edge_mode:(fun ~caller:_ ~callee:_ -> Pipeline.Guarded 8)
      ()
  in
  let expected, _ = reference fns "fan-out" "{\"num\":6}" in
  let got, stats = run_merged report ~root:"fan-out" ~req:"{\"num\":6}" ~host:Interp.null_host in
  Alcotest.(check string) "output matches below alpha" expected got;
  Alcotest.(check int) "all local" 0 (List.length stats.Interp.remote_async)

let test_conditional_invocation_above_alpha () =
  let fns = [ fan_out "rust" ~callee:"leaf"; leaf "rust" ] in
  let report =
    merge fns ~members:[ "fan-out"; "leaf" ] ~root:"fan-out"
      ~edge_mode:(fun ~caller:_ ~callee:_ -> Pipeline.Guarded 8)
      ()
  in
  let host = { Interp.invoke = (fun ~kind:_ ~name ~req -> fst (reference fns name req)) } in
  let expected, _ = reference fns "fan-out" "{\"num\":12}" in
  let got, stats = run_merged report ~root:"fan-out" ~req:"{\"num\":12}" ~host in
  Alcotest.(check string) "correct despite overflow" expected got;
  Alcotest.(check int) "4 overflow calls went remote" 4 (List.length stats.Interp.remote_async);
  Alcotest.(check bool) "curl loaded lazily for the overflow" true stats.Interp.curl_loaded;
  Alcotest.(check bool) "not eagerly" false stats.Interp.curl_loaded_eagerly

let test_conditional_counter_resets_per_request () =
  (* Two requests below alpha in a row: the second must also be fully
     local, i.e. the counter was reset. *)
  let fns = [ fan_out "rust" ~callee:"leaf"; leaf "rust" ] in
  let report =
    merge fns ~members:[ "fan-out"; "leaf" ] ~root:"fan-out"
      ~edge_mode:(fun ~caller:_ ~callee:_ -> Pipeline.Guarded 8)
      ()
  in
  (* The interpreter materializes globals per run, so cross-request counter
     state is exercised by running twice within one module instance is not
     possible through run_handler; instead check the reset store exists in
     the entry handler. *)
  let m = report.Pipeline.merged_module in
  match Ir.find_func m (Pipeline.entry_handler "fan-out") with
  | None -> Alcotest.fail "entry handler missing"
  | Some f -> (
      match f.Ir.blocks with
      | entry :: _ ->
          let has_reset =
            List.exists
              (fun (i : Ir.instr) ->
                match i with
                | Ir.Store { src = Ir.Const (Ir.Cint (Ir.I64, 0L)); ptr = Ir.Const (Ir.Cglobal g); _ } ->
                    String.length g >= 5 && String.sub g 0 5 = "qcnt_"
                | _ -> false)
              entry.Ir.instrs
          in
          Alcotest.(check bool) "counter reset at entry" true has_reset
      | [] -> Alcotest.fail "no blocks")

let test_dce_removes_dead_handlers () =
  let fns = [ front "rust"; middle "rust"; leaf "rust" ] in
  let report = merge fns ~members:[ "front"; "middle"; "leaf" ] ~root:"front" () in
  let m = report.Pipeline.merged_module in
  Alcotest.(check bool) "middle handler stripped" true (Ir.find_func m "middle__handler" = None);
  Alcotest.(check bool) "leaf handler stripped" true (Ir.find_func m "leaf__handler" = None);
  Alcotest.(check bool) "entry handler kept" true (Ir.find_func m "front__handler" <> None);
  Alcotest.(check bool) "locals kept" true (Ir.find_func m "middle__local" <> None);
  Alcotest.(check bool) "something was removed" true (report.Pipeline.removed_symbols > 0)

let test_merge_rejects_disconnected_member () =
  let isolated =
    { Ast.fn_name = "island"; fn_lang = "rust"; mergeable = true; body = Ast.Json_empty }
  in
  let fns = [ front "rust"; middle "rust"; leaf "rust"; isolated ] in
  match merge fns ~members:[ "front"; "middle"; "leaf"; "island" ] ~root:"front" () with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected rejection of disconnected member"

(* --- Spawn-all fan-out (Fan_out_all) through the pipeline --- *)

let fan_out_all lang ~callee =
  {
    Ast.fn_name = "fan-out";
    fn_lang = lang;
    mergeable = true;
    body =
      Ast.Json_set_str
        ( Ast.Json_empty,
          "all",
          Ast.Fan_out_all { callee; count = Ast.Json_get_int (Ast.Var "req", "num") } );
  }

let worker lang =
  {
    Ast.fn_name = "worker";
    fn_lang = lang;
    mergeable = true;
    body =
      Ast.Json_set_str
        (Ast.Json_empty, "data", Ast.Concat (Ast.Str_lit "w", Ast.Json_get_str (Ast.Var "req", "data")));
  }

let test_fan_out_all_merged_equivalence () =
  List.iter
    (fun (l1, l2) ->
      let fns = [ fan_out_all l1 ~callee:"worker"; worker l2 ] in
      let report = merge fns ~members:[ "fan-out"; "worker" ] ~root:"fan-out" () in
      List.iter
        (fun num ->
          let req = Printf.sprintf "{\"num\":%d}" num in
          let expected, _ = reference fns "fan-out" req in
          let got, stats = run_merged report ~root:"fan-out" ~req ~host:Interp.null_host in
          Alcotest.(check string) (Printf.sprintf "%s/%s num=%d" l1 l2 num) expected got;
          Alcotest.(check int) "all local" 0 (List.length stats.Interp.remote_async))
        [ 0; 1; 4; 9 ])
    [ ("rust", "rust"); ("go", "swift"); ("c", "rust") ]

let test_fan_out_all_guarded_overflow () =
  let fns = [ fan_out_all "rust" ~callee:"worker"; worker "rust" ] in
  let report =
    merge fns ~members:[ "fan-out"; "worker" ] ~root:"fan-out"
      ~edge_mode:(fun ~caller:_ ~callee:_ -> Pipeline.Guarded 3)
      ()
  in
  let host = { Interp.invoke = (fun ~kind:_ ~name ~req -> fst (reference fns name req)) } in
  let expected, _ = reference fns "fan-out" "{\"num\":7}" in
  let got, stats = run_merged report ~root:"fan-out" ~req:"{\"num\":7}" ~host in
  Alcotest.(check string) "overflow preserves output" expected got;
  Alcotest.(check int) "4 of 7 went remote" 4 (List.length stats.Interp.remote_async)

(* --- Per-function billing (§8) --- *)

let test_billing_counts_per_function () =
  let fns = [ front "rust"; middle "rust"; leaf "rust" ] in
  let report =
    Pipeline.merge_group
      ~lookup:(lookup_for fns)
      ~members:[ "front"; "middle"; "leaf" ]
      ~root:"front" ~billing:true ()
  in
  let m = report.Pipeline.merged_module in
  Alcotest.(check (list string)) "billed functions" [ "front"; "leaf"; "middle" ]
    (List.sort compare (Quilt_ir.Pass_billing.billed_functions m));
  match Interp.run_handler ~host:Interp.null_host m ~fname:(Pipeline.entry_handler "front") ~req:"{\"x\":3}" with
  | Error e -> Alcotest.fail e
  | Ok (got, stats) ->
      let expected, _ = reference fns "front" "{\"x\":3}" in
      Alcotest.(check string) "billing does not change behaviour" expected got;
      let count fn = Option.value ~default:0 (Hashtbl.find_opt stats.Interp.billing fn) in
      Alcotest.(check int) "front billed once" 1 (count "front");
      Alcotest.(check int) "middle billed once" 1 (count "middle");
      (* leaf is called by both front and middle. *)
      Alcotest.(check int) "leaf billed twice" 2 (count "leaf")

let test_billing_off_by_default () =
  let fns = [ front "rust"; middle "rust"; leaf "rust" ] in
  let report = merge fns ~members:[ "front"; "middle"; "leaf" ] ~root:"front" () in
  Alcotest.(check (list string)) "no billing globals" []
    (Quilt_ir.Pass_billing.billed_functions report.Pipeline.merged_module)

(* --- Sizes (Appendix E relations) --- *)

let test_sizes_merged_smaller_than_sum () =
  let fns = [ front "rust"; middle "rust"; leaf "rust" ] in
  let singles = List.map (fun f -> Sizes.binary_size_mb (Frontend.compile f)) fns in
  let sum = List.fold_left ( +. ) 0.0 singles in
  let report = merge fns ~members:[ "front"; "middle"; "leaf" ] ~root:"front" () in
  let merged = Sizes.binary_size_mb report.Pipeline.merged_module in
  Alcotest.(check bool) "merged < sum of singles" true (merged < sum);
  Alcotest.(check bool) "merged > any single" true (List.for_all (fun s -> merged > s *. 0.9) singles)

let test_sizes_cross_language_pays_two_runtimes () =
  let mono = merge [ front "rust"; middle "rust"; leaf "rust" ] ~members:[ "front"; "middle"; "leaf" ] ~root:"front" () in
  let cross = merge [ front "rust"; middle "go"; leaf "rust" ] ~members:[ "front"; "middle"; "leaf" ] ~root:"front" () in
  Alcotest.(check bool) "two runtimes cost more" true
    (Sizes.binary_size_mb cross.Pipeline.merged_module
    > Sizes.binary_size_mb mono.Pipeline.merged_module)

let test_sizes_http_stub_dropped_when_fully_merged () =
  let fns = [ front "rust"; middle "rust"; leaf "rust" ] in
  let full = merge fns ~members:[ "front"; "middle"; "leaf" ] ~root:"front" () in
  let partial = merge fns ~members:[ "front"; "middle" ] ~root:"front" () in
  let stub m = List.assoc "http-stub" (Sizes.breakdown m.Pipeline.merged_module) in
  Alcotest.(check (float 1e-9)) "no stub when no remote calls remain" 0.0 (stub full);
  Alcotest.(check bool) "stub present with cut edges" true (stub partial > 0.0)

let test_sizes_breakdown_sums () =
  let m = Frontend.compile (leaf "go") in
  let total = Sizes.binary_size_mb m in
  let parts = List.fold_left (fun a (_, v) -> a +. v) 0.0 (Sizes.breakdown m) in
  Alcotest.(check (float 1e-9)) "breakdown sums to total" total parts

(* --- content-addressed merge cache --- *)

(* Identical inputs (same member ASTs, root, edge modes, billing) must hit;
   the key sorts members, so member-list order is irrelevant. *)
let test_cache_hit_on_identical_inputs () =
  Pipeline.reset_cache ();
  let fns = [ front "rust"; middle "rust"; leaf "rust" ] in
  let r1 = merge fns ~members:[ "middle"; "leaf" ] ~root:"middle" () in
  Alcotest.(check (pair int int)) "first merge misses" (0, 1) (Pipeline.cache_stats ());
  let r2 = merge fns ~members:[ "middle"; "leaf" ] ~root:"middle" () in
  Alcotest.(check (pair int int)) "second merge hits" (1, 1) (Pipeline.cache_stats ());
  Alcotest.(check bool) "the report is shared, not recompiled" true (r1 == r2);
  ignore (merge fns ~members:[ "leaf"; "middle" ] ~root:"middle" ());
  Alcotest.(check (pair int int)) "member order irrelevant" (2, 1) (Pipeline.cache_stats ())

(* Content addressing invalidates by construction: change a member's source
   and the digest — hence the key — changes. *)
let test_cache_miss_on_changed_source () =
  Pipeline.reset_cache ();
  let fns = [ front "rust"; middle "rust"; leaf "rust" ] in
  ignore (merge fns ~members:[ "middle"; "leaf" ] ~root:"middle" ());
  let fns' = [ front "rust"; middle "rust"; leaf "go" ] in
  ignore (merge fns' ~members:[ "middle"; "leaf" ] ~root:"middle" ());
  Alcotest.(check (pair int int)) "changed member source misses" (0, 2) (Pipeline.cache_stats ());
  ignore (merge fns' ~members:[ "middle"; "leaf" ] ~root:"middle" ());
  Alcotest.(check (pair int int)) "then hits on repeat" (1, 2) (Pipeline.cache_stats ())

(* Guard decisions are part of the key: a re-profile that changes an α must
   recompile, an unchanged α must not. *)
let test_cache_keyed_by_edge_mode () =
  Pipeline.reset_cache ();
  let fns = [ front "rust"; middle "rust"; leaf "rust" ] in
  let guarded alpha ~caller:_ ~callee:_ = Pipeline.Guarded alpha in
  ignore (merge fns ~members:[ "middle"; "leaf" ] ~root:"middle" ());
  ignore (merge fns ~members:[ "middle"; "leaf" ] ~root:"middle" ~edge_mode:(guarded 2) ());
  ignore (merge fns ~members:[ "middle"; "leaf" ] ~root:"middle" ~edge_mode:(guarded 3) ());
  Alcotest.(check (pair int int)) "distinct guards are distinct keys" (0, 3) (Pipeline.cache_stats ());
  ignore (merge fns ~members:[ "middle"; "leaf" ] ~root:"middle" ~edge_mode:(guarded 2) ());
  Alcotest.(check (pair int int)) "same guard hits" (1, 3) (Pipeline.cache_stats ())

let test_cache_disabled_bypasses () =
  Pipeline.reset_cache ();
  Pipeline.set_cache_enabled false;
  Fun.protect
    ~finally:(fun () -> Pipeline.set_cache_enabled true)
    (fun () ->
      let fns = [ front "rust"; middle "rust"; leaf "rust" ] in
      let r1 = merge fns ~members:[ "middle"; "leaf" ] ~root:"middle" () in
      let r2 = merge fns ~members:[ "middle"; "leaf" ] ~root:"middle" () in
      Alcotest.(check (pair int int)) "no cache traffic" (0, 0) (Pipeline.cache_stats ());
      Alcotest.(check bool) "recompiled" true (r1 != r2);
      let out1, _ = run_merged r1 ~root:"middle" ~req:"{\"x\":5}" ~host:Interp.null_host in
      let out2, _ = run_merged r2 ~root:"middle" ~req:"{\"x\":5}" ~host:Interp.null_host in
      Alcotest.(check string) "identical results either way" out1 out2)

let suite =
  [
    ( "merge.pipeline",
      [
        Alcotest.test_case "two functions, same language" `Quick test_merge_two_same_language;
        Alcotest.test_case "three with shared callee" `Quick test_merge_three_with_shared_callee;
        Alcotest.test_case "cross-language pairs" `Quick test_merge_cross_language;
        Alcotest.test_case "all five languages" `Quick test_merge_all_five_languages;
        Alcotest.test_case "verifies and roundtrips" `Quick test_merged_module_verifies_and_roundtrips;
        Alcotest.test_case "cut edges stay remote" `Quick test_merge_keeps_cut_edges_remote;
        Alcotest.test_case "async fan-out" `Quick test_merge_async_fan_out_unconditional;
        Alcotest.test_case "rejects disconnected member" `Quick test_merge_rejects_disconnected_member;
        Alcotest.test_case "dce removes dead handlers" `Quick test_dce_removes_dead_handlers;
      ] );
    ( "merge.conditional",
      [
        Alcotest.test_case "below alpha: all local" `Quick test_conditional_invocation_below_alpha;
        Alcotest.test_case "above alpha: overflow remote" `Quick test_conditional_invocation_above_alpha;
        Alcotest.test_case "counter reset per request" `Quick test_conditional_counter_resets_per_request;
      ] );
    ( "merge.fanout",
      [
        Alcotest.test_case "fan_out_all equivalence" `Quick test_fan_out_all_merged_equivalence;
        Alcotest.test_case "fan_out_all guarded overflow" `Quick test_fan_out_all_guarded_overflow;
      ] );
    ( "merge.billing",
      [
        Alcotest.test_case "counts per function" `Quick test_billing_counts_per_function;
        Alcotest.test_case "off by default" `Quick test_billing_off_by_default;
      ] );
    ( "merge.cache",
      [
        Alcotest.test_case "hit on identical inputs" `Quick test_cache_hit_on_identical_inputs;
        Alcotest.test_case "miss on changed source" `Quick test_cache_miss_on_changed_source;
        Alcotest.test_case "keyed by edge mode" `Quick test_cache_keyed_by_edge_mode;
        Alcotest.test_case "disabled bypasses" `Quick test_cache_disabled_bypasses;
      ] );
    ( "merge.sizes",
      [
        Alcotest.test_case "merged smaller than sum" `Quick test_sizes_merged_smaller_than_sum;
        Alcotest.test_case "cross-language pays runtimes" `Quick test_sizes_cross_language_pays_two_runtimes;
        Alcotest.test_case "http stub dropped" `Quick test_sizes_http_stub_dropped_when_fully_merged;
        Alcotest.test_case "breakdown sums" `Quick test_sizes_breakdown_sums;
      ] );
  ]
