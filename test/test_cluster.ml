(* Tests for quilt_cluster: the §4 decision algorithms.

   The two independent Phase-2 solvers — the literal Appendix-B ILP through
   the generic branch-and-bound, and the structural closure solver — are
   cross-checked on random instances.  An Appendix-A-style instance checks
   that more subgraphs can strictly beat fewer. *)

module Callgraph = Quilt_dag.Callgraph
module Gen = Quilt_dag.Gen
module Drift = Quilt_dag.Drift
module Types = Quilt_cluster.Types
module Closure = Quilt_cluster.Closure
module Encode = Quilt_cluster.Encode
module Optimal = Quilt_cluster.Optimal
module Dih = Quilt_cluster.Dih
module Heur = Quilt_cluster.Heur
module Grasp = Quilt_cluster.Grasp
module Metrics = Quilt_cluster.Metrics
module Decision = Quilt_cluster.Decision
module Sweep = Quilt_cluster.Sweep
module Rng = Quilt_util.Rng

let big = 1e9

let node id name mem cpu = { Callgraph.id; name; mem_mb = mem; cpu; mergeable = true }

let sync src dst weight = { Callgraph.src; dst; weight; kind = Callgraph.Sync }

(* A(5) calls B, C, C2 heavily; each of those makes one cheap call to a
   memory-heavy tail.  M = 70: with 3 subgraphs some heavy edge must be cut;
   with 4 subgraphs (tails as roots) only the cheap edges are cut. *)
let appendix_a_graph () =
  let nodes =
    [|
      node 0 "A" 5.0 1.0;
      node 1 "B" 15.0 1.0;
      node 2 "C" 15.0 1.0;
      node 3 "C2" 15.0 1.0;
      node 4 "D" 35.0 1.0;
      node 5 "E" 35.0 1.0;
      node 6 "E2" 35.0 1.0;
    |]
  in
  let edges = [ sync 0 1 100; sync 0 2 100; sync 0 3 100; sync 1 4 1; sync 2 5 1; sync 3 6 1 ] in
  Callgraph.make ~nodes ~edges ~root:0 ~invocations:1

let appendix_a_limits = { Types.max_cpu = big; max_mem_mb = 70.0 }

let best_cost_at_k g lim k =
  let n = Callgraph.n_nodes g in
  let non_roots = List.filter (fun v -> v <> g.Callgraph.root) (List.init n (fun i -> i)) in
  let best = ref None in
  List.iter
    (fun extra ->
      let roots = g.Callgraph.root :: extra in
      match Closure.solve_exact g lim ~roots with
      | None -> ()
      | Some sol -> (
          match !best with
          | Some c when sol.Types.cost >= c -> ()
          | _ -> best := Some sol.Types.cost))
    (Sweep.combinations non_roots (k - 1));
  !best

let test_appendix_a_more_subgraphs_win () =
  let g = appendix_a_graph () in
  let lim = appendix_a_limits in
  Alcotest.(check (option int)) "k=1 infeasible" None (best_cost_at_k g lim 1);
  Alcotest.(check (option int)) "k=2 infeasible" None (best_cost_at_k g lim 2);
  (match best_cost_at_k g lim 3 with
  | None -> Alcotest.fail "k=3 should be feasible"
  | Some c3 -> (
      Alcotest.(check bool) "k=3 must cut a heavy edge" true (c3 >= 100);
      match best_cost_at_k g lim 4 with
      | None -> Alcotest.fail "k=4 should be feasible"
      | Some c4 ->
          Alcotest.(check int) "k=4 cuts only the cheap edges" 3 c4;
          Alcotest.(check bool) "more subgraphs strictly better" true (c4 < c3)));
  match Optimal.solve g lim with
  | None -> Alcotest.fail "optimal should find a grouping"
  | Some sol ->
      Alcotest.(check int) "optimal cost" 3 sol.Types.cost;
      Alcotest.(check int) "optimal uses 4 subgraphs" 4 (List.length sol.Types.roots)

(* --- Closure mechanics --- *)

let chain_graph () =
  (* r -> a -> b, with b also called by r. *)
  let nodes = [| node 0 "r" 10.0 1.0; node 1 "a" 10.0 1.0; node 2 "b" 10.0 1.0 |] in
  let edges = [ sync 0 1 5; sync 1 2 4; sync 0 2 3 ] in
  Callgraph.make ~nodes ~edges ~root:0 ~invocations:1

let test_nr_closure_stops_at_roots () =
  let g = chain_graph () in
  let is_root = [| true; false; true |] in
  let c = Closure.nr_closure g ~is_root 0 in
  Alcotest.(check (array bool)) "closure of r stops at b" [| true; true; false |] c;
  let c1 = Closure.nr_closure g ~is_root 1 in
  Alcotest.(check (array bool)) "closure of a stops at b" [| false; true; false |] c1

let test_nr_closure_whole_graph () =
  let g = chain_graph () in
  let is_root = [| true; false; false |] in
  let c = Closure.nr_closure g ~is_root 0 in
  Alcotest.(check (array bool)) "root closure covers all" [| true; true; true |] c

let test_resources_sync_memory_counts_per_edge () =
  let g = chain_graph () in
  let members = [| true; true; true |] in
  let cpu, mem = Closure.resources g ~members ~root:0 in
  (* cpu = 1 + 5*1 (r->a) + 4*1 (a->b) + 3*1 (r->b) = 13.
     mem = 10 + 10 (a) + 10 (b via a->b) + 10 (b via r->b) = 40. *)
  Alcotest.(check (float 1e-9)) "cpu" 13.0 cpu;
  Alcotest.(check (float 1e-9)) "mem" 40.0 mem

let test_resources_async_memory_scales () =
  let nodes = [| node 0 "r" 10.0 1.0; node 1 "a" 20.0 2.0 |] in
  let edges = [ { Callgraph.src = 0; dst = 1; weight = 4; kind = Callgraph.Async } ] in
  let g = Callgraph.make ~nodes ~edges ~root:0 ~invocations:1 in
  let cpu, mem = Closure.resources g ~members:[| true; true |] ~root:0 in
  (* cpu = 1 + 4*2 = 9; mem = 10 + 20 + 3*20 = 90. *)
  Alcotest.(check (float 1e-9)) "cpu" 9.0 cpu;
  Alcotest.(check (float 1e-9)) "async mem" 90.0 mem

let test_diamond_async_memory () =
  (* §4.1: even sync (B,D)/(C,D) edges can be concurrent when (A,B)/(A,C)
     are async, so memory counts D once per in-edge. *)
  let g = Gen.diamond () in
  let members = [| true; true; true; true |] in
  let _, mem = Closure.resources g ~members ~root:0 in
  (* 32 (A) + 32 (B) + 32 (C) + 32 (D via B) + 32 (D via C) = 160. *)
  Alcotest.(check (float 1e-9)) "diamond mem" 160.0 mem

let test_solve_exact_single_root_when_fits () =
  let g = chain_graph () in
  let lim = { Types.max_cpu = big; max_mem_mb = 1000.0 } in
  match Closure.solve_exact g lim ~roots:[ 0 ] with
  | None -> Alcotest.fail "should be feasible"
  | Some sol ->
      Alcotest.(check int) "cost 0 when whole graph merges" 0 sol.Types.cost;
      Alcotest.(check int) "one subgraph" 1 (List.length sol.Types.subgraphs)

let test_solve_exact_infeasible_when_too_small () =
  let g = chain_graph () in
  let lim = { Types.max_cpu = big; max_mem_mb = 5.0 } in
  Alcotest.(check bool) "even singletons do not fit" true (Closure.solve_exact g lim ~roots:[ 0; 1; 2 ] = None)

let test_solve_exact_absorption () =
  (* Roots {r, b}: G_r can absorb b to internalize both edges into b. *)
  let g = chain_graph () in
  let lim = { Types.max_cpu = big; max_mem_mb = 1000.0 } in
  match Closure.solve_exact g lim ~roots:[ 0; 2 ] with
  | None -> Alcotest.fail "feasible"
  | Some sol -> Alcotest.(check int) "absorbing b removes all cuts" 0 sol.Types.cost

let test_solve_exact_cut_when_absorption_infeasible () =
  let g = chain_graph () in
  (* Memory 35: G_r = {r,a} is 20; absorbing b adds 10 (via a->b) + 10 (via
     r->b) = 40 total > 35.  So edges into b (weight 4+3) are cut. *)
  let lim = { Types.max_cpu = big; max_mem_mb = 35.0 } in
  match Closure.solve_exact g lim ~roots:[ 0; 2 ] with
  | None -> Alcotest.fail "feasible"
  | Some sol -> Alcotest.(check int) "cost = weights into b" 7 sol.Types.cost

let test_root_set_feasible () =
  let g = appendix_a_graph () in
  Alcotest.(check bool) "k=4 relief set feasible" true
    (Closure.root_set_feasible g appendix_a_limits ~roots:[ 0; 4; 5; 6 ]);
  Alcotest.(check bool) "root alone infeasible" false
    (Closure.root_set_feasible g appendix_a_limits ~roots:[ 0 ])

(* --- Cross-check: closure solver vs literal ILP --- *)

let random_instance seed =
  let rng = Rng.create seed in
  let n = Rng.int_in rng 3 7 in
  let g, lims = Gen.random_rdag rng ~n () in
  let lim = { Types.max_cpu = lims.Gen.max_cpu; max_mem_mb = lims.Gen.max_mem_mb } in
  (* Random root set of size <= 3 including the graph root. *)
  let extras =
    List.filter (fun v -> v <> g.Callgraph.root && Rng.chance rng 0.4) (List.init n (fun i -> i))
  in
  let extras = List.filteri (fun i _ -> i < 2) extras in
  (g, lim, g.Callgraph.root :: extras)

let prop_closure_matches_ilp =
  QCheck.Test.make ~name:"closure exact solver = literal Appendix-B ILP" ~count:40
    (QCheck.int_range 1 10_000)
    (fun seed ->
      let g, lim, roots = random_instance seed in
      let a = Closure.solve_exact g lim ~roots in
      let b = Encode.solve_ilp g lim ~roots in
      match a, b with
      | None, None -> true
      | Some sa, Some sb -> sa.Types.cost = sb.Types.cost
      | Some _, None | None, Some _ -> false)

let prop_exact_solutions_valid =
  QCheck.Test.make ~name:"exact solutions pass full validation" ~count:60
    (QCheck.int_range 1 10_000)
    (fun seed ->
      let g, lim, roots = random_instance seed in
      match Closure.solve_exact g lim ~roots with
      | None -> true
      | Some sol -> Metrics.solution_valid g lim sol = Ok ())

let prop_greedy_never_beats_exact =
  QCheck.Test.make ~name:"greedy cost >= exact cost, and greedy is valid" ~count:40
    (QCheck.int_range 1 10_000)
    (fun seed ->
      let g, lim, roots = random_instance seed in
      match Closure.solve_exact g lim ~roots, Closure.solve_greedy g lim ~roots with
      | None, None -> true
      | Some e, Some gr -> gr.Types.cost >= e.Types.cost && Metrics.solution_valid g lim gr = Ok ()
      | None, Some _ -> false (* greedy found something exact missed: impossible *)
      | Some _, None -> false (* greedy must find at least the minimal assignment *))

let prop_optimal_beats_heuristics =
  QCheck.Test.make ~name:"optimal <= DIH <= baseline; all valid" ~count:25
    (QCheck.int_range 1 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = Rng.int_in rng 4 8 in
      let g, lims = Gen.random_rdag rng ~n () in
      let lim = { Types.max_cpu = lims.Gen.max_cpu; max_mem_mb = lims.Gen.max_mem_mb } in
      match Optimal.solve g lim, Dih.solve g lim with
      | Some o, Some d ->
          o.Types.cost <= d.Types.cost
          && d.Types.cost <= Metrics.baseline_cost g
          && Metrics.solution_valid g lim o = Ok ()
          && Metrics.solution_valid g lim d = Ok ()
      | None, None -> true
      | Some _, None -> false (* DIH has an all-roots fallback *)
      | None, Some _ -> false)

(* --- DIH internals --- *)

let test_dih_scores_favor_heavy_gateways () =
  let g = appendix_a_graph () in
  let s = Dih.scores g appendix_a_limits in
  (* The tails D, E, E2 carry heavy memory; B/C/C2 gate one tail each.  The
     gateway score of B must exceed the root's (always 0). *)
  Alcotest.(check (float 0.0)) "root scores 0" 0.0 s.(0);
  Alcotest.(check bool) "tail D scores above 0" true (s.(4) > 0.0);
  (* B gates D: downstream demand includes D, so B >= D on the gamma term,
     and B has weighted in-degree 100 on top. *)
  Alcotest.(check bool) "gateway B beats its tail D" true (s.(1) > s.(4))

let test_dih_downstream_demand () =
  let g = chain_graph () in
  let d = Dih.downstream_demand g in
  (* b: just itself. *)
  let cpu_b, mem_b = d.(2) in
  Alcotest.(check (float 1e-9)) "b cpu" 1.0 cpu_b;
  Alcotest.(check (float 1e-9)) "b mem" 10.0 mem_b;
  (* a: a + 4 calls to b. *)
  let cpu_a, mem_a = d.(1) in
  Alcotest.(check (float 1e-9)) "a cpu" 5.0 cpu_a;
  Alcotest.(check (float 1e-9)) "a mem" 20.0 mem_a;
  (* r: whole graph. *)
  let cpu_r, mem_r = d.(0) in
  Alcotest.(check (float 1e-9)) "r cpu" 13.0 cpu_r;
  Alcotest.(check (float 1e-9)) "r mem" 40.0 mem_r

let test_dih_candidate_pool_size () =
  let g = appendix_a_graph () in
  let pool = Dih.candidate_pool g appendix_a_limits 3 in
  Alcotest.(check int) "pool size" 3 (List.length pool);
  Alcotest.(check bool) "root not in pool" true (not (List.mem 0 pool))

let test_dih_finds_appendix_a_optimum () =
  let g = appendix_a_graph () in
  match Dih.solve g appendix_a_limits with
  | None -> Alcotest.fail "DIH should find a grouping"
  | Some sol -> Alcotest.(check int) "DIH matches optimal here" 3 sol.Types.cost

let test_weighted_degree_worse_on_appendix_a () =
  let g = appendix_a_graph () in
  match Heur.solve_weighted_degree ~pool_size:3 g appendix_a_limits with
  | None -> Alcotest.fail "weighted degree should still find something"
  | Some sol ->
      (* The in-degree heuristic ranks B, C, C2 (in-weight 100) over the
         memory-heavy tails (in-weight 1), so with a tight pool it cuts
         heavy edges. *)
      Alcotest.(check bool) "simple heuristic pays >= 100" true (sol.Types.cost >= 100)

(* --- Heuristic scores --- *)

let test_betweenness_on_chain () =
  let g = Gen.line_graph ~n:5 ~cpu:1.0 ~mem_mb:10.0 ~weight:1 in
  let bc = Heur.betweenness_scores g in
  Alcotest.(check bool) "middle beats ends" true (bc.(2) > bc.(0) && bc.(2) > bc.(4))

let test_betweenness_solver_valid () =
  let rng = Rng.create 12 in
  let g, lims = Gen.random_rdag rng ~n:9 () in
  let lim = { Types.max_cpu = lims.Gen.max_cpu; max_mem_mb = lims.Gen.max_mem_mb } in
  match Heur.solve_betweenness g lim with
  | Some sol ->
      Alcotest.(check bool) "valid" true (Metrics.solution_valid g lim sol = Ok ());
      Alcotest.(check bool) "no worse than baseline" true (sol.Types.cost <= Metrics.baseline_cost g)
  | None -> Alcotest.fail "betweenness solver should find something (fallback on)"

let test_weighted_out_degree () =
  let g = appendix_a_graph () in
  let s = Heur.weighted_out_degree_scores g in
  Alcotest.(check (float 1e-9)) "A out-degree" 300.0 s.(0);
  Alcotest.(check (float 1e-9)) "D out-degree" 0.0 s.(4)

(* --- GRASP --- *)

let test_grasp_solves_appendix_a () =
  let g = appendix_a_graph () in
  match Grasp.solve (Rng.create 42) g appendix_a_limits with
  | None -> Alcotest.fail "grasp should find a grouping"
  | Some sol ->
      Alcotest.(check bool) "valid" true (Metrics.solution_valid g appendix_a_limits sol = Ok ());
      Alcotest.(check bool) "beats baseline" true (sol.Types.cost < Metrics.baseline_cost g)

let test_grasp_on_large_graph () =
  let rng = Rng.create 7 in
  let g, lims = Gen.random_rdag rng ~n:120 () in
  let lim = { Types.max_cpu = lims.Gen.max_cpu; max_mem_mb = lims.Gen.max_mem_mb } in
  match Grasp.solve (Rng.create 3) g lim with
  | None -> Alcotest.fail "grasp should handle 120 nodes"
  | Some sol ->
      Alcotest.(check bool) "valid at scale" true (Metrics.solution_valid g lim sol = Ok ());
      Alcotest.(check bool) "beats baseline at scale" true (sol.Types.cost < Metrics.baseline_cost g)

(* --- The opt-in bit (non-mergeable functions, §1.1) --- *)

let pin g name =
  Callgraph.with_mergeable g (fun n -> n <> name)

let test_non_mergeable_forces_singleton () =
  let g = chain_graph () in
  let lim = { Types.max_cpu = big; max_mem_mb = 1000.0 } in
  (* Everything merges when all functions opt in... *)
  (match Closure.solve_exact g lim ~roots:[ 0 ] with
  | Some sol -> Alcotest.(check int) "all merge" 0 sol.Types.cost
  | None -> Alcotest.fail "feasible");
  (* ...but pinning `a` forces it into its own container: both edges into a
     and its call to b become remote (b must also be a root, though r may
     absorb it... r has no direct edge path to b without a, so b stays
     separate too). *)
  let g' = pin g "a" in
  match Closure.solve_exact g' lim ~roots:[ 0 ] with
  | None -> Alcotest.fail "still feasible"
  | Some sol ->
      Alcotest.(check bool) "valid under the opt-in rule" true (Metrics.solution_valid g' lim sol = Ok ());
      let a_groups =
        List.filter (fun sg -> sg.Types.members.(1)) sol.Types.subgraphs
      in
      List.iter
        (fun sg ->
          Alcotest.(check int) "a is alone" 1
            (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 sg.Types.members))
        a_groups;
      Alcotest.(check bool) "cost reflects the cuts" true (sol.Types.cost > 0)

let test_non_mergeable_forced_roots () =
  let g = pin (chain_graph ()) "a" in
  (* a and its callee b are forced roots. *)
  Alcotest.(check (list int)) "forced roots" [ 1; 2 ] (Closure.forced_roots g)

let test_non_mergeable_ilp_agrees () =
  let g = pin (chain_graph ()) "a" in
  let lim = { Types.max_cpu = big; max_mem_mb = 1000.0 } in
  match Closure.solve_exact g lim ~roots:[ 0 ], Encode.solve_ilp g lim ~roots:[ 0; 1; 2 ] with
  | Some a, Some b -> Alcotest.(check int) "solvers agree under pinning" a.Types.cost b.Types.cost
  | _ -> Alcotest.fail "both should be feasible"

let prop_non_mergeable_solutions_valid =
  QCheck.Test.make ~name:"random pinning still yields valid solutions" ~count:40
    (QCheck.int_range 1 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = Rng.int_in rng 4 8 in
      let g, lims = Gen.random_rdag rng ~n () in
      let lim = { Types.max_cpu = lims.Gen.max_cpu; max_mem_mb = lims.Gen.max_mem_mb } in
      (* Pin one random non-root vertex. *)
      let pinned = Rng.int_in rng 1 (n - 1) in
      let g = Callgraph.with_mergeable g (fun name -> name <> Printf.sprintf "f%d" pinned) in
      match Decision.solve Decision.Dih g lim with
      | Some sol -> Metrics.solution_valid g lim sol = Ok ()
      | None -> true (* pinning can make tight instances infeasible *))

(* --- Metrics --- *)

let test_baseline_cost () =
  let g = appendix_a_graph () in
  Alcotest.(check int) "sum of weights" 303 (Metrics.baseline_cost g)

let test_optimality_gap () =
  Alcotest.(check (float 1e-9)) "optimal has gap 0" 0.0 (Metrics.optimality_gap ~cost_h:3 ~cost_o:3 ~cost_b:303);
  Alcotest.(check (float 1e-9)) "baseline-quality has gap 1" 1.0
    (Metrics.optimality_gap ~cost_h:303 ~cost_o:3 ~cost_b:303);
  Alcotest.(check (float 1e-9)) "degenerate denominator" 0.0 (Metrics.optimality_gap ~cost_h:5 ~cost_o:5 ~cost_b:5)

let test_solution_valid_detects_bad_cost () =
  let g = chain_graph () in
  let lim = { Types.max_cpu = big; max_mem_mb = 1000.0 } in
  match Closure.solve_exact g lim ~roots:[ 0 ] with
  | None -> Alcotest.fail "feasible"
  | Some sol ->
      let broken = { sol with Types.cost = sol.Types.cost + 1 } in
      Alcotest.(check bool) "detects cost mismatch" true (Metrics.solution_valid g lim broken <> Ok ())

let test_solution_valid_detects_overflow () =
  let g = chain_graph () in
  let lim = { Types.max_cpu = big; max_mem_mb = 1000.0 } in
  match Closure.solve_exact g lim ~roots:[ 0 ] with
  | None -> Alcotest.fail "feasible"
  | Some sol ->
      let tight = { Types.max_cpu = big; max_mem_mb = 30.0 } in
      Alcotest.(check bool) "detects memory overflow" true (Metrics.solution_valid g tight sol <> Ok ())

(* --- Decision front door --- *)

let test_decision_auto_small_graph () =
  let g = appendix_a_graph () in
  match Decision.auto g appendix_a_limits with
  | None -> Alcotest.fail "auto should solve"
  | Some sol -> Alcotest.(check int) "auto picks optimal on small graphs" 3 sol.Types.cost

(* --- exact-solver size caps and dispatcher consistency --- *)

let test_exact_root_cap_boundary () =
  (* A line graph with every vertex a root and limits that admit only
     singleton groups: trivial instances, sized exactly at the cap. *)
  let mk k =
    let g = Quilt_dag.Gen.line_graph ~n:k ~cpu:1.0 ~mem_mb:10.0 ~weight:1 in
    let lim = { Types.max_cpu = 1.5; max_mem_mb = 15.0 } in
    (g, lim, List.init k (fun i -> i))
  in
  let g, lim, roots = mk Closure.exact_max_roots in
  (match Closure.solve_exact g lim ~roots with
  | Some sol -> Alcotest.(check int) "all edges cut at the cap" (Metrics.baseline_cost g) sol.Types.cost
  | None -> Alcotest.fail "instance at exact_max_roots must be solvable");
  let g, lim, roots = mk (Closure.exact_max_roots + 1) in
  (match Closure.solve_exact g lim ~roots with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument above exact_max_roots");
  (* The dispatcher must route the same instance to the greedy solver
     instead of tripping the exact solver's guard. *)
  match Closure.solve g lim ~roots with
  | Some sol -> Alcotest.(check bool) "greedy fallback valid" true (Metrics.solution_valid g lim sol = Ok ())
  | None -> Alcotest.fail "dispatcher must fall back to solve_greedy above the cap"

let test_exact_root_edge_cap () =
  (* Few roots but more root-targeted edges than fit in one cut mask: 0 fans
     out to [fan] vertices that all call root 1. *)
  let fan = Closure.exact_max_root_edges + 1 in
  let n = fan + 2 in
  let nodes = Array.init n (fun i -> node i (Printf.sprintf "f%d" i) 1.0 0.01) in
  let edges = List.concat (List.init fan (fun i -> [ sync 0 (i + 2) 1; sync (i + 2) 1 1 ])) in
  let g = Callgraph.make ~nodes ~edges ~root:0 ~invocations:1 in
  let lim = { Types.max_cpu = big; max_mem_mb = big } in
  let roots = [ 0; 1 ] in
  (match Closure.solve_exact g lim ~roots with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument above exact_max_root_edges");
  match Closure.solve g lim ~roots with
  | Some sol -> Alcotest.(check bool) "greedy fallback valid" true (Metrics.solution_valid g lim sol = Ok ())
  | None -> Alcotest.fail "dispatcher must fall back to solve_greedy above the edge cap"

(* --- incremental greedy vs rebuild-from-scratch reference --- *)

(* The pre-optimization greedy solver, transcribed as a reference: every
   candidate move is re-scored by rebuilding members and the full joint cost
   from scratch through the public closure API.  The incremental solver must
   return exactly the same solution (same absorb choices, members, cost). *)
let reference_greedy (g : Callgraph.t) (lim : Types.limits) ~roots =
  let n = Callgraph.n_nodes g in
  let roots =
    let seen = Hashtbl.create 8 in
    let uniq =
      List.filter
        (fun r -> if Hashtbl.mem seen r then false else (Hashtbl.add seen r (); true))
        (roots @ Closure.forced_roots g)
    in
    let uniq = if List.mem g.Callgraph.root uniq then uniq else g.Callgraph.root :: uniq in
    g.Callgraph.root :: List.filter (fun r -> r <> g.Callgraph.root) uniq
  in
  let is_root = Array.make n false in
  List.iter (fun r -> is_root.(r) <- true) roots;
  let closures = Array.make n [||] in
  List.iter (fun r -> closures.(r) <- Closure.nr_closure g ~is_root r) roots;
  let feasible (cpu, mem) = cpu <= lim.Types.max_cpu +. 1e-9 && mem <= lim.Types.max_mem_mb +. 1e-9 in
  let connected ~members ~root =
    let ok = ref true in
    Array.iteri
      (fun j in_m ->
        if in_m && j <> root then
          if not (List.exists (fun e -> members.(e.Callgraph.src)) (Callgraph.preds g j)) then
            ok := false)
      members;
    !ok
  in
  let members_of absorb =
    let m = Array.make n false in
    List.iter (fun s -> Array.iteri (fun j b -> if b then m.(j) <- true) closures.(s)) absorb;
    m
  in
  let absorb = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace absorb r [ r ]) roots;
  let members_for r = members_of (Hashtbl.find absorb r) in
  let joint_cost () =
    let cost = ref 0 in
    List.iter
      (fun (e : Callgraph.edge) ->
        let cut =
          List.exists
            (fun r ->
              let members = members_for r and a = Hashtbl.find absorb r in
              members.(e.Callgraph.src)
              && not (List.mem e.Callgraph.dst a || members.(e.Callgraph.dst)))
            roots
        in
        if cut then cost := !cost + e.Callgraph.weight)
      g.Callgraph.edges;
    !cost
  in
  let all_feasible () =
    List.for_all
      (fun r ->
        let members = members_for r in
        connected ~members ~root:r && feasible (Closure.resources g ~members ~root:r))
      roots
  in
  if not (all_feasible ()) then None
  else begin
    let cost = ref (joint_cost ()) in
    let improved = ref true in
    while !improved do
      improved := false;
      let best_move = ref None in
      List.iter
        (fun r ->
          let current = Hashtbl.find absorb r in
          let members = members_for r in
          List.iter
            (fun j ->
              if
                j <> r
                && (not (List.mem j current))
                && (Callgraph.node g r).Callgraph.mergeable
                && (Callgraph.node g j).Callgraph.mergeable
              then begin
                let has_edge =
                  List.exists
                    (fun (e : Callgraph.edge) -> e.Callgraph.dst = j && members.(e.Callgraph.src))
                    g.Callgraph.edges
                in
                if has_edge then begin
                  Hashtbl.replace absorb r (j :: current);
                  let m' = members_for r in
                  let ok =
                    connected ~members:m' ~root:r
                    && feasible (Closure.resources g ~members:m' ~root:r)
                  in
                  (if ok then begin
                     let c' = joint_cost () in
                     match !best_move with
                     | Some (_, _, best_c) when c' >= best_c -> ()
                     | _ -> if c' < !cost then best_move := Some (r, j, c')
                   end);
                  Hashtbl.replace absorb r current
                end
              end)
            roots)
        roots;
      match !best_move with
      | Some (r, j, c') ->
          Hashtbl.replace absorb r (j :: Hashtbl.find absorb r);
          cost := c';
          improved := true
      | None -> ()
    done;
    let subgraphs =
      List.map
        (fun r ->
          let members = members_for r in
          let cpu, mem = Closure.resources g ~members ~root:r in
          { Types.root = r; absorbed = Hashtbl.find absorb r; members; cpu; mem_mb = mem })
        roots
    in
    Some { Types.roots; subgraphs; cost = joint_cost () }
  end

let prop_incremental_greedy_matches_reference =
  QCheck.Test.make ~name:"incremental greedy = rebuild-from-scratch reference" ~count:60
    (QCheck.int_range 1 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = Rng.int_in rng 4 30 in
      let g, lims = Gen.random_rdag rng ~n () in
      let lim = { Types.max_cpu = lims.Gen.max_cpu; max_mem_mb = lims.Gen.max_mem_mb } in
      let extras =
        List.filter
          (fun v -> v <> g.Callgraph.root && Rng.chance rng 0.35)
          (List.init n (fun i -> i))
      in
      let roots = g.Callgraph.root :: extras in
      match reference_greedy g lim ~roots, Closure.solve_greedy g lim ~roots with
      | None, None -> true
      | Some a, Some b ->
          a.Types.cost = b.Types.cost
          && List.length a.Types.subgraphs = List.length b.Types.subgraphs
          && List.for_all2
               (fun (sa : Types.subgraph) (sb : Types.subgraph) ->
                 sa.Types.root = sb.Types.root
                 && sa.Types.members = sb.Types.members
                 && List.sort compare sa.Types.absorbed = List.sort compare sb.Types.absorbed)
               a.Types.subgraphs b.Types.subgraphs
      | Some _, None | None, Some _ -> false)

(* --- parallel decision subsystem: differential pinning --- *)

let solution_sig (s : Types.solution) =
  ( s.Types.cost,
    s.Types.roots,
    List.map
      (fun (sg : Types.subgraph) ->
        (sg.Types.root, List.sort compare sg.Types.absorbed, sg.Types.members))
      s.Types.subgraphs )

let same_solution a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> solution_sig a = solution_sig b
  | Some _, None | None, Some _ -> false

let prop_exact_par_matches_exact =
  QCheck.Test.make ~name:"solve_exact_par = solve_exact (1/2/4 domains, warm on/off)" ~count:30
    (QCheck.int_range 1 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = Rng.int_in rng 4 12 in
      let g, lims = Gen.random_rdag rng ~n () in
      let lim = { Types.max_cpu = lims.Gen.max_cpu; max_mem_mb = lims.Gen.max_mem_mb } in
      let extras =
        List.filter (fun v -> v <> g.Callgraph.root && Rng.chance rng 0.5) (List.init n (fun i -> i))
      in
      let roots = g.Callgraph.root :: extras in
      let seq = Closure.solve_exact g lim ~roots in
      List.for_all
        (fun domains ->
          List.for_all
            (fun warm ->
              same_solution (Closure.solve_exact_par ~domains ~warm g lim ~roots) seq)
            [ true; false ])
        [ 1; 2; 4 ])

let prop_portfolio_auto_matches_sequential =
  QCheck.Test.make ~name:"portfolio auto = sequential auto (2 and 4 domains)" ~count:15
    (QCheck.int_range 1 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = Rng.int_in rng 5 13 in
      let g, lims = Gen.random_rdag rng ~n () in
      let lim = { Types.max_cpu = lims.Gen.max_cpu; max_mem_mb = lims.Gen.max_mem_mb } in
      let seq = Decision.auto ~domains:1 g lim in
      List.for_all (fun d -> same_solution (Decision.auto ~domains:d g lim) seq) [ 2; 4 ])

let test_portfolio_all_regimes () =
  (* One instance per auto_algorithm regime: exact portfolio (n <= 12),
     DIH sweep (n <= 60), GRASP (beyond). *)
  List.iter
    (fun n ->
      let rng = Rng.create (2000 + n) in
      let g, lims = Gen.random_rdag rng ~n () in
      let lim = { Types.max_cpu = lims.Gen.max_cpu; max_mem_mb = lims.Gen.max_mem_mb } in
      let seq = Decision.auto ~domains:1 g lim in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: portfolio output identical" n)
        true
        (same_solution (Decision.auto ~domains:4 g lim) seq))
    [ 10; 30; 70 ]

let resource_drifted_graph rng (g : Callgraph.t) =
  let n = Callgraph.n_nodes g in
  let victim = Rng.int_in rng 0 (n - 1) in
  let nodes =
    Array.map
      (fun (nd : Callgraph.node) ->
        if nd.Callgraph.id = victim then { nd with Callgraph.cpu = nd.Callgraph.cpu *. 1.6 }
        else nd)
      g.Callgraph.nodes
  in
  Callgraph.make ~nodes ~edges:g.Callgraph.edges ~root:g.Callgraph.root
    ~invocations:g.Callgraph.invocations

let prop_incremental_matches_touch_all =
  QCheck.Test.make ~name:"incremental re-decision = everything-touched path" ~count:20
    (QCheck.int_range 1 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = Rng.int_in rng 5 25 in
      let g, lims = Gen.random_rdag rng ~n () in
      let lim = { Types.max_cpu = lims.Gen.max_cpu; max_mem_mb = lims.Gen.max_mem_mb } in
      match Decision.auto ~domains:1 g lim with
      | None -> true
      | Some prev ->
          let g' = resource_drifted_graph rng g in
          let report = Drift.detect ~threshold:0.3 g g' in
          let inc = Decision.resolve_incremental ~prev_graph:g ~prev ~report g' lim in
          let all =
            Decision.resolve_incremental ~prev_graph:g ~prev ~report:(Drift.touch_all g') g' lim
          in
          same_solution inc all
          && (match inc with
             | None -> true
             | Some s -> Metrics.solution_valid g' lim s = Ok ()))

let test_sequential_escape_hatch () =
  let saved = Sys.getenv_opt "QUILT_SEQUENTIAL" in
  let restore () =
    Unix.putenv "QUILT_SEQUENTIAL" (match saved with Some v -> v | None -> "")
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "QUILT_SEQUENTIAL" "";
      let rng = Rng.create 4242 in
      let g, lims = Gen.random_rdag rng ~n:10 () in
      let lim = { Types.max_cpu = lims.Gen.max_cpu; max_mem_mb = lims.Gen.max_mem_mb } in
      let seq = Decision.auto ~domains:1 g lim in
      (* Unforced, the portfolio runs incumbent-driven searches... *)
      let c0 = Closure.bounded_search_count () in
      let unforced = Decision.auto ~domains:4 g lim in
      Alcotest.(check bool) "portfolio uses the bounded search" true
        (Closure.bounded_search_count () > c0);
      Alcotest.(check bool) "portfolio output identical" true (same_solution unforced seq);
      (* ...and QUILT_SEQUENTIAL=1 must keep it off that path end-to-end. *)
      Unix.putenv "QUILT_SEQUENTIAL" "1";
      let c1 = Closure.bounded_search_count () in
      let forced = Decision.auto ~domains:4 g lim in
      ignore (Closure.solve_exact_par ~domains:4 g lim ~roots:[ g.Callgraph.root ]);
      Alcotest.(check int) "no incumbent-driven search ran" c1 (Closure.bounded_search_count ());
      Alcotest.(check bool) "forced result = sequential auto" true (same_solution forced seq))

let test_decision_names () =
  Alcotest.(check string) "optimal" "optimal" (Decision.algorithm_name Decision.Optimal);
  Alcotest.(check string) "dih" "downstream-impact" (Decision.algorithm_name Decision.Dih)

let test_combinations () =
  Alcotest.(check int) "C(5,2)" 10 (List.length (Sweep.combinations [ 1; 2; 3; 4; 5 ] 2));
  Alcotest.(check (list (list int))) "C(n,0)" [ [] ] (Sweep.combinations [ 1; 2 ] 0);
  Alcotest.(check (list (list int))) "C(2,3) empty" [] (Sweep.combinations [ 1; 2 ] 3)

let suite =
  [
    ( "cluster.closure",
      [
        Alcotest.test_case "nr_closure stops at roots" `Quick test_nr_closure_stops_at_roots;
        Alcotest.test_case "nr_closure whole graph" `Quick test_nr_closure_whole_graph;
        Alcotest.test_case "resources: sync memory per edge" `Quick test_resources_sync_memory_counts_per_edge;
        Alcotest.test_case "resources: async memory scales" `Quick test_resources_async_memory_scales;
        Alcotest.test_case "diamond memory accounting" `Quick test_diamond_async_memory;
        Alcotest.test_case "single root merge" `Quick test_solve_exact_single_root_when_fits;
        Alcotest.test_case "infeasible when too small" `Quick test_solve_exact_infeasible_when_too_small;
        Alcotest.test_case "absorption internalizes edges" `Quick test_solve_exact_absorption;
        Alcotest.test_case "cut when absorption infeasible" `Quick test_solve_exact_cut_when_absorption_infeasible;
        Alcotest.test_case "root_set_feasible" `Quick test_root_set_feasible;
        Alcotest.test_case "exact root cap boundary" `Quick test_exact_root_cap_boundary;
        Alcotest.test_case "exact root-edge cap" `Quick test_exact_root_edge_cap;
        QCheck_alcotest.to_alcotest prop_closure_matches_ilp;
        QCheck_alcotest.to_alcotest prop_exact_solutions_valid;
        QCheck_alcotest.to_alcotest prop_greedy_never_beats_exact;
        QCheck_alcotest.to_alcotest prop_incremental_greedy_matches_reference;
      ] );
    ( "cluster.optimal",
      [
        Alcotest.test_case "appendix A: more subgraphs win" `Slow test_appendix_a_more_subgraphs_win;
        QCheck_alcotest.to_alcotest prop_optimal_beats_heuristics;
      ] );
    ( "cluster.dih",
      [
        Alcotest.test_case "scores favor heavy gateways" `Quick test_dih_scores_favor_heavy_gateways;
        Alcotest.test_case "downstream demand" `Quick test_dih_downstream_demand;
        Alcotest.test_case "candidate pool" `Quick test_dih_candidate_pool_size;
        Alcotest.test_case "finds appendix A optimum" `Quick test_dih_finds_appendix_a_optimum;
        Alcotest.test_case "weighted degree worse on appendix A" `Quick test_weighted_degree_worse_on_appendix_a;
      ] );
    ( "cluster.heur",
      [
        Alcotest.test_case "betweenness on chain" `Quick test_betweenness_on_chain;
        Alcotest.test_case "weighted out-degree" `Quick test_weighted_out_degree;
        Alcotest.test_case "betweenness solver" `Quick test_betweenness_solver_valid;
      ] );
    ( "cluster.grasp",
      [
        Alcotest.test_case "solves appendix A" `Quick test_grasp_solves_appendix_a;
        Alcotest.test_case "large graph" `Slow test_grasp_on_large_graph;
      ] );
    ( "cluster.optin",
      [
        Alcotest.test_case "non-mergeable forces singleton" `Quick test_non_mergeable_forces_singleton;
        Alcotest.test_case "forced roots" `Quick test_non_mergeable_forced_roots;
        Alcotest.test_case "ilp agrees under pinning" `Quick test_non_mergeable_ilp_agrees;
        QCheck_alcotest.to_alcotest prop_non_mergeable_solutions_valid;
      ] );
    ( "cluster.metrics",
      [
        Alcotest.test_case "baseline cost" `Quick test_baseline_cost;
        Alcotest.test_case "optimality gap" `Quick test_optimality_gap;
        Alcotest.test_case "detects bad cost" `Quick test_solution_valid_detects_bad_cost;
        Alcotest.test_case "detects overflow" `Quick test_solution_valid_detects_overflow;
      ] );
    ( "cluster.decision",
      [
        Alcotest.test_case "auto on small graph" `Quick test_decision_auto_small_graph;
        Alcotest.test_case "algorithm names" `Quick test_decision_names;
        Alcotest.test_case "combinations" `Quick test_combinations;
      ] );
    ( "cluster.parallel",
      [
        QCheck_alcotest.to_alcotest prop_exact_par_matches_exact;
        QCheck_alcotest.to_alcotest prop_portfolio_auto_matches_sequential;
        Alcotest.test_case "portfolio parity across regimes" `Slow test_portfolio_all_regimes;
        QCheck_alcotest.to_alcotest prop_incremental_matches_touch_all;
        Alcotest.test_case "QUILT_SEQUENTIAL escape hatch" `Quick test_sequential_escape_hatch;
      ] );
  ]
