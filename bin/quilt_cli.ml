(* The quilt command-line tool: inspect, decide, merge, and benchmark the
   bundled workflows on the simulated platform.

     quilt list                       workflows available
     quilt inspect compose-post      profile and print the call graph
     quilt decide compose-post       profile + run the decision algorithm
     quilt merge compose-post        run the full merge pipeline; --dump-ir
     quilt bench compose-post        baseline-vs-quilt latency comparison
     quilt adapt path-shift          online control plane on a drift scenario
     quilt chaos crashstorm          fault injection across the three arms
     quilt place compose-post        place a workflow on the example cluster
     quilt obs compose-post          span tracing + live-profiler re-decision *)

module Engine = Quilt_platform.Engine
module Loadgen = Quilt_platform.Loadgen
module Callgraph = Quilt_dag.Callgraph
module Types = Quilt_cluster.Types
module Deathstar = Quilt_apps.Deathstar
module Special = Quilt_apps.Special
module Workflow = Quilt_apps.Workflow
module Config = Quilt_core.Config
module Quilt = Quilt_core.Quilt
module Pipeline = Quilt_merge.Pipeline
module Sizes = Quilt_merge.Sizes

let workflows ~async =
  Deathstar.all ~async ()
  @ [ Special.modified_nearby_cinema (); Special.noop (); Special.cross_language ();
      Special.fan_out ~callee_mem_mb:14 (); Special.routed () ]

let find_workflow ~async name =
  match List.find_opt (fun w -> w.Workflow.wf_name = name) (workflows ~async) with
  | Some wf -> wf
  | None ->
      Printf.eprintf "unknown workflow %s; try `quilt list`\n" name;
      exit 1

(* --- commands --- *)

let list_cmd () =
  List.iter
    (fun wf ->
      Printf.printf "%-22s %2d functions, entry %s, languages {%s}\n" wf.Workflow.wf_name
        (List.length wf.Workflow.functions)
        wf.Workflow.entry
        (String.concat ", "
           (List.sort_uniq compare (List.map (fun f -> f.Quilt_lang.Ast.fn_lang) wf.Workflow.functions))))
    (workflows ~async:false)

let profile_graph ~async name =
  let wf = find_workflow ~async name in
  match Quilt.profile Config.default ~workflows:[ wf ] wf with
  | Ok g -> (wf, g)
  | Error e ->
      Printf.eprintf "profiling failed: %s\n" e;
      exit 1

let inspect_cmd async dot name =
  let _, g = profile_graph ~async name in
  if dot then print_string (Callgraph.to_dot g) else Format.printf "%a@." Callgraph.pp g

let decide_cmd async name =
  let wf, g = profile_graph ~async name in
  match Quilt.optimize ~graph:g Config.default ~workflows:[ wf ] wf with
  | Ok t ->
      Format.printf "%a@." (Types.pp_solution g) t.Quilt.solution;
      print_string (Quilt.describe t)
  | Error e ->
      Printf.eprintf "decision failed: %s\n" e;
      exit 1

let merge_cmd async dump_ir req name =
  let wf = find_workflow ~async name in
  let report =
    Pipeline.merge_group
      ~lookup:(fun svc -> Workflow.lookup wf svc)
      ~members:(Workflow.fn_names wf) ~root:wf.Workflow.entry ()
  in
  Printf.printf "merged %s: %d rounds, %d symbols stripped, languages {%s}, %.2f MB\n"
    wf.Workflow.wf_name
    (List.length report.Pipeline.rounds)
    report.Pipeline.removed_symbols
    (String.concat ", " report.Pipeline.languages)
    (Sizes.binary_size_mb report.Pipeline.merged_module);
  List.iter
    (fun (callee, sites) -> Printf.printf "  merged %-24s (%d call sites rewritten)\n" callee sites)
    report.Pipeline.rounds;
  (* Validation run on the default engine (QVM; QUILT_TREEWALK=1 falls back
     to the tree-walker). *)
  let req =
    match req with Some r -> r | None -> wf.Workflow.gen_req (Quilt_util.Rng.create 1)
  in
  (match Pipeline.validate ~host:Quilt_ir.Interp.echo_host report ~req with
  | Ok (res, stats) ->
      Printf.printf "validated on %s engine: %s -> %s (%d steps)\n"
        (Quilt_ir.Vm.engine_name ()) req res stats.Quilt_ir.Interp.steps
  | Error e ->
      Printf.eprintf "validation on %s engine failed: %s\n" (Quilt_ir.Vm.engine_name ()) e;
      exit 1);
  if dump_ir then print_string (Quilt_ir.Pp.to_string report.Pipeline.merged_module)

(* Lint either a .qir file or the merged module of a bundled workflow.
   Base verifier findings always; the strict tier adds typing/dominance
   checks and the W-series lints; the interference analyzer always runs
   (its findings are what merging introduces).  Exit 1 on any Error. *)
let lint_cmd async strict json target =
  let modul =
    if Filename.check_suffix target ".qir" || Sys.file_exists target then begin
      let text = In_channel.with_open_text target In_channel.input_all in
      try Quilt_ir.Parser.parse_module text
      with Failure e ->
        Printf.eprintf "%s: parse error: %s\n" target e;
        exit 1
    end
    else begin
      let wf = find_workflow ~async target in
      let report =
        Pipeline.merge_group
          ~lookup:(fun svc -> Workflow.lookup wf svc)
          ~members:(Workflow.fn_names wf) ~root:wf.Workflow.entry ()
      in
      report.Pipeline.merged_module
    end
  in
  let module Verify = Quilt_ir.Verify in
  let diags = Verify.run ~strict modul @ Verify.interference modul in
  let errors =
    List.length (List.filter (fun d -> d.Verify.severity = Verify.Error) diags)
  in
  if json then begin
    let module Json = Quilt_util.Json in
    let of_diag (d : Verify.diagnostic) =
      Json.obj
        ([
           ("code", Json.str d.Verify.code);
           ( "severity",
             Json.str (match d.Verify.severity with Verify.Error -> "error" | Verify.Warning -> "warning") );
           ("where", Json.str d.Verify.where);
         ]
        @ (match d.Verify.block with Some b -> [ ("block", Json.str b) ] | None -> [])
        @ [ ("message", Json.str d.Verify.message) ])
    in
    print_endline
      (Json.to_string
         (Json.obj
            [
              ("module", Json.str modul.Quilt_ir.Ir.mname);
              ("instrs", Json.Int (Quilt_ir.Ir.instr_count modul));
              ("strict", Json.Bool strict);
              ("errors", Json.Int errors);
              ("diagnostics", Json.List (List.map of_diag diags));
            ]))
  end
  else begin
    List.iter (fun d -> print_endline (Verify.to_string d)) diags;
    Printf.printf "%s: %d instrs, %d diagnostics (%d errors)%s\n" modul.Quilt_ir.Ir.mname
      (Quilt_ir.Ir.instr_count modul) (List.length diags) errors
      (if strict then " [strict]" else "")
  end;
  if errors > 0 then exit 1

let bench_cmd async rate duration seed name =
  let wf = find_workflow ~async name in
  let cfg = { Config.default with Config.seed = Config.default.Config.seed + seed } in
  let t =
    match Quilt.optimize cfg ~workflows:[ wf ] wf with
    | Ok t -> t
    | Error e ->
        Printf.eprintf "optimize failed: %s\n" e;
        exit 1
  in
  let measure engine =
    Loadgen.run_open_loop engine ~entry:wf.Workflow.entry ~gen_req:wf.Workflow.gen_req ~rate_rps:rate
      ~duration_us:(duration *. 1e6)
      ~warmup_us:(Float.min (duration *. 1e6 /. 4.0) 10_000_000.0)
      ~seed ()
  in
  let b_engine = Quilt.fresh_platform ~seed:(7 + seed) ~workflows:[ wf ] () in
  let b = measure b_engine in
  let q_engine = Quilt.fresh_platform ~seed:(7 + seed) ~workflows:[ wf ] () in
  Quilt.apply q_engine t;
  let q = measure q_engine in
  Printf.printf "workflow %s at %.0f rps for %.0f s:\n" name rate duration;
  Printf.printf "  baseline: median %8.2f ms   p99 %8.2f ms   throughput %7.0f rps\n"
    (Loadgen.median_ms b) (Loadgen.p99_ms b) b.Loadgen.throughput_rps;
  Printf.printf "  quilt   : median %8.2f ms   p99 %8.2f ms   throughput %7.0f rps\n"
    (Loadgen.median_ms q) (Loadgen.p99_ms q) q.Loadgen.throughput_rps

(* --engine-stats: wrap a command body with process-global simulator and
   merge-cache counters and print an events/sec summary afterwards.  The
   global counters exist precisely for this: adapt/chaos spin up many
   engines internally (profiling runs, canaries, matrix arms). *)
let with_engine_stats enabled f =
  if not enabled then f ()
  else begin
    Engine.reset_global_stats ();
    Pipeline.reset_cache ();
    let t0 = Unix.gettimeofday () in
    f ();
    let wall_s = Unix.gettimeofday () -. t0 in
    let events, peak = Engine.global_stats () in
    let hits, misses = Pipeline.cache_stats () in
    Printf.printf "engine stats: %d events in %.2fs wall (%.0f events/s), peak queue depth %d\n"
      events wall_s
      (float_of_int events /. Float.max 1e-9 wall_s)
      peak;
    let lookups = hits + misses in
    if lookups = 0 then print_endline "merge cache: no merges performed"
    else
      Printf.printf "merge cache: %d/%d hits (%.1f%% hit rate)\n" hits lookups
        (100.0 *. float_of_int hits /. float_of_int lookups)
  end

let adapt_cmd (seed, smoke, engine_stats) no_controller incremental scenario =
  with_engine_stats engine_stats @@ fun () ->
  let run wc =
    match
      Quilt_control.Scenario.run ~smoke ~seed ~incremental_redecide:incremental
        ~with_controller:wc scenario
    with
    | Ok o -> o
    | Error e ->
        Printf.eprintf "adapt failed: %s\n" e;
        exit 1
  in
  if no_controller then Quilt_control.Scenario.print_outcome (run false)
  else begin
    let o = run true in
    Quilt_control.Scenario.print_outcome o;
    let stale = run false in
    let ps = Quilt_control.Scenario.post_shift_phase scenario in
    match
      ( List.assoc_opt ps o.Quilt_control.Scenario.o_phased.Loadgen.per_phase,
        List.assoc_opt ps stale.Quilt_control.Scenario.o_phased.Loadgen.per_phase )
    with
    | Some a, Some s ->
        Printf.printf "post-shift (%s) p99: %.2f ms adapted vs %.2f ms stale\n" ps
          (Loadgen.p99_ms a) (Loadgen.p99_ms s)
    | _ -> ()
  end

let chaos_cmd (seed, smoke, engine_stats) policy_name scenario =
  with_engine_stats engine_stats @@ fun () ->
  let module Fs = Quilt_fault.Scenario in
  let module Policy = Quilt_fault.Policy in
  let policy, policy_name =
    match policy_name with
    | "none" -> (Policy.none, "none")
    | "retry" -> (Policy.default_retry, "retry")
    | "hedged" -> (Policy.hedged, "hedged")
    | other ->
        Printf.eprintf "unknown policy %s (none|retry|hedged)\n" other;
        exit 1
  in
  let scenario_filter = if scenario = "all" then None else Some scenario in
  match Fs.run_matrix ~smoke ~seed ~scenario_filter ~policy ~policy_name () with
  | Error e ->
      Printf.eprintf "chaos failed: %s\n" e;
      exit 1
  | Ok outcomes ->
      Printf.printf "fault matrix (%s policy, seed %d%s):\n" policy_name seed
        (if smoke then ", smoke" else "");
      List.iter Fs.print_outcome outcomes

let place_cmd async policy_name rate duration (seed, smoke, engine_stats) rebalance name =
  with_engine_stats engine_stats @@ fun () ->
  let duration = if smoke then Float.min duration 6.0 else duration in
  let module Topology = Quilt_place.Topology in
  let module Placement = Quilt_place.Placement in
  let policy =
    match Placement.policy_of_string policy_name with
    | Some p -> p
    | None ->
        Printf.eprintf "unknown policy %s (first-fit|best-fit|locality|spread)\n" policy_name;
        exit 1
  in
  let wf = find_workflow ~async name in
  let topo = Topology.example () in
  Printf.printf "cluster: %s\n" (Topology.describe topo);
  let demands =
    List.map
      (fun f ->
        Placement.demand ~service:f.Quilt_lang.Ast.fn_name ~vcpus:Config.default.Config.vcpus
          ~mem_mb:Config.default.Config.mem_limit_mb)
      wf.Workflow.functions
  in
  let affinities =
    List.map
      (fun (s, d, _) -> { Placement.a_src = s; a_dst = d; a_weight = 1.0 })
      wf.Workflow.code_edges
  in
  let placement = Placement.plan ~seed ~affinities topo policy demands in
  Printf.printf "placement (%s):\n%s" (Placement.policy_name policy)
    (Format.asprintf "%a" Placement.pp placement);
  if placement.Placement.rejected <> [] then exit 1;
  let engine = Quilt.fresh_platform ~seed:(7 + seed) ~workflows:[ wf ] () in
  Engine.set_topology ~assign:placement.Placement.placed engine topo;
  let reb =
    if rebalance then begin
      let r = Quilt_control.Rebalancer.create engine () in
      Quilt_control.Rebalancer.start r ~until:(duration *. 1e6);
      Some r
    end
    else None
  in
  let res =
    Loadgen.run_open_loop engine ~entry:wf.Workflow.entry ~gen_req:wf.Workflow.gen_req
      ~rate_rps:rate ~duration_us:(duration *. 1e6)
      ~warmup_us:(Float.min (duration *. 1e6 /. 4.0) 10_000_000.0)
      ~seed ()
  in
  Printf.printf "%s at %.0f rps for %.0f s: median %.2f ms, p99 %.2f ms, availability %.2f%%\n"
    name rate duration (Loadgen.median_ms res) (Loadgen.p99_ms res)
    (100.0 *. Loadgen.availability res);
  let h = Engine.topo_counters engine in
  Printf.printf
    "hops: %d same-node, %d same-rack, %d cross-rack; %d image-cache hits, %d capacity denials\n"
    h.Engine.hops_same_node h.Engine.hops_same_rack h.Engine.hops_cross_rack
    h.Engine.image_cache_hits h.Engine.capacity_denials;
  Array.iter
    (fun nl ->
      Printf.printf "  %-10s %4.1f/%4.1f vCPU, %6.0f/%6.0f MB, %d containers\n"
        nl.Engine.nl_node.Topology.node_name nl.Engine.nl_used_vcpus
        nl.Engine.nl_node.Topology.vcpus nl.Engine.nl_used_mem_mb
        nl.Engine.nl_node.Topology.mem_mb nl.Engine.nl_containers)
    (Engine.node_loads engine);
  match reb with
  | None -> ()
  | Some r ->
      let s = Quilt_control.Rebalancer.summary r in
      Printf.printf
        "rebalancer: %d ticks, %d migrations (%d passed, %d reverted), %d holds, %d skips\n"
        s.Quilt_control.Rebalancer.s_ticks s.Quilt_control.Rebalancer.s_migrations
        s.Quilt_control.Rebalancer.s_passes s.Quilt_control.Rebalancer.s_reverts
        s.Quilt_control.Rebalancer.s_holds s.Quilt_control.Rebalancer.s_skips;
      List.iter
        (fun e ->
          if e.Quilt_control.Rebalancer.ev_detail <> "" then
            Printf.printf "  [%7.2fs] %-16s %s\n"
              (e.Quilt_control.Rebalancer.ev_ts /. 1e6)
              (Quilt_control.Rebalancer.kind_name e.Quilt_control.Rebalancer.ev_kind)
              e.Quilt_control.Rebalancer.ev_detail)
        (Quilt_control.Rebalancer.events r)

(* quilt obs: run the merged-vs-unmerged comparison with the span recorder
   attached, close the profile→merge loop by re-deciding from the observed
   spans, and export Chrome-trace / folded-flamegraph / metrics files. *)
let obs_cmd async rate duration sample trace_out flame_out metrics_out
    (seed, smoke, engine_stats) name =
  with_engine_stats engine_stats @@ fun () ->
  let module Recorder = Quilt_obs.Recorder in
  let module Profiler = Quilt_obs.Profiler in
  let module Metrics = Quilt_obs.Metrics in
  let module Export = Quilt_obs.Export in
  let wf = find_workflow ~async name in
  let duration = if smoke then Float.min duration 6.0 else duration in
  let cfg = { Config.default with Config.seed = Config.default.Config.seed + seed } in
  let plan =
    match Quilt.optimize cfg ~workflows:[ wf ] wf with
    | Ok t -> t
    | Error e ->
        Printf.eprintf "optimize failed: %s\n" e;
        exit 1
  in
  let registry = Metrics.create () in
  let run_arm ~arm ~apply_plan =
    let engine = Quilt.fresh_platform ~seed:(7 + seed) ~workflows:[ wf ] () in
    if apply_plan then Quilt.apply engine plan;
    let recorder = Recorder.create ~sample_period:sample ~seed () in
    Recorder.attach recorder engine;
    let res =
      Loadgen.run_open_loop engine ~entry:wf.Workflow.entry ~gen_req:wf.Workflow.gen_req
        ~rate_rps:rate ~duration_us:(duration *. 1e6)
        ~warmup_us:(Float.min (duration *. 1e6 /. 4.0) 10_000_000.0)
        ~seed ()
    in
    let labels = [ ("arm", arm); ("workflow", name) ] in
    Metrics.record_result registry ~labels res;
    Metrics.record_engine registry ~labels engine;
    Metrics.record_recorder registry ~labels recorder;
    (res, recorder)
  in
  let b, rb = run_arm ~arm:"baseline" ~apply_plan:false in
  let q, rq = run_arm ~arm:"quilt" ~apply_plan:true in
  Printf.printf "workflow %s at %.0f rps for %.0f s, head-sampling 1/%d:\n" name rate duration
    sample;
  let pr label (r : Loadgen.result) recorder =
    Printf.printf
      "  %-8s median %7.2f ms  p99 %7.2f ms | %d/%d roots sampled, %d spans (%d dropped)\n"
      label (Loadgen.median_ms r) (Loadgen.p99_ms r)
      (Recorder.sampled_roots recorder)
      (Recorder.seen_roots recorder) (Recorder.recorded recorder) (Recorder.dropped recorder)
  in
  pr "baseline" b rb;
  pr "quilt" q rq;
  (* Close the loop: re-decide from the baseline arm's observed spans and
     compare with the ground-truth plan's grouping. *)
  (match Profiler.callgraph ~code_edges:wf.Workflow.code_edges ~entry:wf.Workflow.entry rb with
  | Error e -> Printf.printf "live profile: %s\n" e
  | Ok g -> (
      let g = Quilt.with_optin wf g in
      match Quilt.optimize ~graph:g cfg ~workflows:[ wf ] wf with
      | Error e -> Printf.printf "live re-decision failed: %s\n" e
      | Ok live ->
          let fp_truth = Quilt_control.Controller.fingerprint plan in
          let fp_live = Quilt_control.Controller.fingerprint live in
          Printf.printf "live-profiler decision %s ground truth [%s]\n"
            (if String.equal fp_live fp_truth then "agrees with" else "DIVERGES from")
            fp_live));
  (match trace_out with
  | Some path ->
      Export.write_file path
        (Quilt_util.Json.to_string (Export.chrome_trace [ ("baseline", rb); ("quilt", rq) ]));
      Printf.printf "wrote Chrome trace (chrome://tracing, Perfetto) to %s\n" path
  | None -> ());
  (match flame_out with
  | Some path ->
      let lines = Export.folded ~prefix:"baseline" rb @ Export.folded ~prefix:"quilt" rq in
      Export.write_file path (Export.folded_to_string lines);
      Printf.printf "wrote folded flamegraph stacks to %s\n" path
  | None -> ());
  match metrics_out with
  | Some path ->
      Export.write_file path (Quilt_util.Json.to_string (Metrics.snapshot registry));
      Printf.printf "wrote metrics snapshot to %s\n" path
  | None -> ()

(* --- cmdliner wiring --- *)

open Cmdliner

let async_flag =
  Arg.(value & flag & info [ "async" ] ~doc:"Use the asynchronous-invocation variant of the workflow.")

let workflow_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKFLOW")

let list_t = Cmd.v (Cmd.info "list" ~doc:"List the bundled workflows") Term.(const list_cmd $ const ())

let inspect_t =
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of text.") in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Profile a workflow and print its call graph (§3)")
    Term.(const inspect_cmd $ async_flag $ dot $ workflow_arg)

let decide_t =
  Cmd.v
    (Cmd.info "decide" ~doc:"Profile and run the constraint-aware merging decision (§4)")
    Term.(const decide_cmd $ async_flag $ workflow_arg)

let merge_t =
  let dump = Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the merged QIR module.") in
  let req =
    Arg.(
      value
      & opt (some string) None
      & info [ "req" ] ~docv:"JSON"
          ~doc:"Request for the post-merge validation run (default: a generated one).")
  in
  Cmd.v
    (Cmd.info "merge" ~doc:"Run the Figure-5 merge pipeline over a whole workflow (§5)")
    Term.(const merge_cmd $ async_flag $ dump $ req $ workflow_arg)

let lint_t =
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Add the analysis-backed tier: SSA dominance of every use, per-instruction typing, \
             phi/CFG agreement, and the unreachable-block / dead-store lints.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON diagnostics.") in
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET" ~doc:"A bundled workflow name (linted post-merge) or a .qir file.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Verify a QIR module: base well-formedness, the strict typed tier, and merge interference")
    Term.(const lint_cmd $ async_flag $ strict $ json $ target)

(* Shared flag wiring: every load-driving subcommand takes the same
   --seed/--smoke/--engine-stats/--domains set (bundled into one term so a
   command adds all of them with a single [$ run_flags]) and the same
   --rate and --duration shapes. *)

let seed_flag =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Perturb every RNG stream; the same seed reproduces the run exactly.")

let smoke_flag =
  Arg.(
    value & flag
    & info [ "smoke" ] ~doc:"Shrink the run to a few virtual seconds (CI-sized).")

let engine_stats_flag =
  Arg.(
    value & flag
    & info [ "engine-stats" ]
        ~doc:
          "Print simulator throughput (events/sec, peak event-queue depth) and the merge \
           cache's hit rate after the run.")

let domains_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Domain-pool width for the parallel decision paths (default: \
           QUILT_POOL_DOMAINS, else the machine's recommended domain count). \
           $(docv)=1 forces the sequential solvers, like QUILT_SEQUENTIAL=1.")

let run_flags =
  Term.(
    const (fun seed smoke engine_stats domains ->
        (match domains with
        | Some d when d >= 1 -> Unix.putenv "QUILT_POOL_DOMAINS" (string_of_int d)
        | Some d ->
            Printf.eprintf "--domains expects an integer >= 1, got %d\n" d;
            Stdlib.exit 1
        | None -> ());
        (seed, smoke, engine_stats))
    $ seed_flag $ smoke_flag $ engine_stats_flag $ domains_flag)

let rate_flag default =
  Arg.(value & opt float default & info [ "rate" ] ~docv:"RPS" ~doc:"Offered load.")

let duration_flag default =
  Arg.(
    value & opt float default
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Measured window (simulated).")

let bench_t =
  Cmd.v
    (Cmd.info "bench" ~doc:"Compare baseline and Quilt deployments under load")
    Term.(
      const bench_cmd $ async_flag $ rate_flag 50.0 $ duration_flag 20.0 $ seed_flag
      $ workflow_arg)

let adapt_t =
  let no_controller =
    Arg.(value & flag & info [ "no-controller" ] ~doc:"Run the phased workload without the controller.")
  in
  let incremental =
    Arg.(
      value & flag
      & info [ "incremental" ]
          ~doc:
            "Opt the controller into warm-start incremental re-decision on drift ticks \
             (escalates to the full optimizer when the incremental path declines).")
  in
  let scenario =
    Arg.(
      value
      & pos 0 string "path-shift"
      & info [] ~docv:"SCENARIO"
          ~doc:
            (Printf.sprintf "One of: %s." (String.concat ", " Quilt_control.Scenario.names)))
  in
  Cmd.v
    (Cmd.info "adapt" ~doc:"Run an adaptive scenario under the online control plane")
    Term.(const adapt_cmd $ run_flags $ no_controller $ incremental $ scenario)

let chaos_t =
  let policy =
    Arg.(
      value & opt string "retry"
      & info [ "policy" ] ~docv:"POLICY" ~doc:"Gateway policy: none, retry, or hedged.")
  in
  let scenario =
    Arg.(
      value
      & pos 0 string "all"
      & info [] ~docv:"SCENARIO"
          ~doc:
            (Printf.sprintf "One of: %s; or all."
               (String.concat ", " Quilt_fault.Scenario.scenario_names)))
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Inject deterministic faults and compare baseline/CM/quilt availability")
    Term.(const chaos_cmd $ run_flags $ policy $ scenario)

let place_t =
  let policy =
    Arg.(
      value & opt string "locality"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Placement policy: first-fit, best-fit, locality, or spread.")
  in
  let rebalance =
    Arg.(
      value & flag
      & info [ "rebalance" ]
          ~doc:"Run the node-utilization rebalancer during the load and report its decisions.")
  in
  Cmd.v
    (Cmd.info "place"
       ~doc:"Place a workflow on the example cluster topology and measure it under load")
    Term.(
      const place_cmd $ async_flag $ policy $ rate_flag 10.0 $ duration_flag 20.0 $ run_flags
      $ rebalance $ workflow_arg)

let obs_t =
  let sample =
    Arg.(
      value & opt int 1
      & info [ "sample" ] ~docv:"N"
          ~doc:"Head-sample 1 in $(docv) root requests (deterministic per seed; 1 = all).")
  in
  let out name doc =
    Arg.(value & opt (some string) None & info [ name ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "obs"
       ~doc:
         "Trace a merged-vs-unmerged run, re-decide from the observed spans, and export \
          traces/flamegraphs/metrics")
    Term.(
      const obs_cmd $ async_flag $ rate_flag 50.0 $ duration_flag 20.0 $ sample
      $ out "trace-out" "Write Chrome trace-event JSON (chrome://tracing, Perfetto) here."
      $ out "flame-out" "Write folded flamegraph stacks (flamegraph.pl, speedscope) here."
      $ out "metrics-out" "Write the metrics-registry snapshot JSON here."
      $ run_flags $ workflow_arg)

let () =
  let doc = "Quilt: resource-aware merging of serverless workflows (SOSP 2025), reproduced in OCaml" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "quilt" ~doc)
          [ list_t; inspect_t; decide_t; merge_t; lint_t; bench_t; adapt_t; chaos_t; place_t; obs_t ]))
